"""Bulk frontier closure kernel: the pair-graph BFS as bitset/array ops.

The scalar :class:`~repro.core.compiled.CompiledKernel` walks the pair
graph one pair per Python iteration — an interpreter-bound loop that
caps the reachable problem sizes well below the n=12–14 systems the
ROADMAP targets.  This module re-expresses the same BFS as bulk integer
operations over *frontiers*:

- **Pair-set membership is a bitset.**  Visited pairs live in one flat
  bit array indexed by the canonical pair code ``i * n + j`` (one bit
  per pair, 64x denser than a dict of ints), so membership tests and
  inserts are O(1) loads with no hashing.
- **Whole-frontier expansion.**  Each BFS level is expanded in chunks:
  one indexed gather per operation produces the successor components of
  every pair in the chunk at once, successors are canonicalized
  (``min``/``max``), diagonal pairs masked out, and the surviving
  candidates deduplicated *in first-occurrence order* before being
  appended — the NumPy path does all of this as array expressions, the
  pure-Python fallback as tight local loops over the same flat arrays.
- **Vectorized seeding and scans.**  The Def 1-1 bucket seeding and the
  Def 5-5/5-7 column scans reduce to arithmetic on the id arrays
  (rest-key subtraction, ``unique``, column-compare masks); see
  :func:`first_differing_scan` / :func:`first_differing_at_all_scan`.

**Witness identity.**  The scalar BFS is exactly level-synchronous: the
order list doubles as the FIFO queue, pairs are expanded in discovery
order, and within one expansion the operations apply in index order.
The bulk kernel processes the pending region of the order list in
contiguous chunks and appends each chunk's fresh discoveries in
(frontier-position, operation-index) order after first-occurrence
deduplication, with the visited bitset updated between chunks — so the
produced ``order`` sequence and packed parent pointers are *identical*
to the scalar kernel's, not merely equivalent (property-tested in
``tests/property/test_bitset_agreement.py``; the layer-order argument
is spelled out in docs/FORMALISM.md, "Bitset frontier closure").

The NumPy path is optional: it engages when :mod:`numpy` imports and
``REPRO_BITSET_NUMPY`` is not ``"0"``; otherwise the pure-Python bulk
path (bytearray bitset, flat arrays) runs, and the scalar kernel remains
the reference both degrade to.  Budgets are metered in frontier-sized
steps via :meth:`~repro.core.budget.BudgetMeter.advance`; trip *points*
therefore differ from the scalar kernel's per-256-expansion checks, but
trip semantics (zero-expansion budgets, completed-run-is-exact
soundness) are preserved.
"""

from __future__ import annotations

import os
from array import array
from collections.abc import Iterable, Mapping, Sequence

from repro.core.budget import BudgetMeter

#: Feature flag for the NumPy bulk path: set to "0" to force the
#: pure-Python bitset fallback even when numpy is importable.
ENV_NUMPY_FLAG = "REPRO_BITSET_NUMPY"

#: Packed-parent sentinel for Def 2-8 initial pairs (kept numerically
#: identical to :data:`repro.core.compiled.INITIAL`; not imported to
#: keep this module free of circular dependencies).
INITIAL = -1

#: Pairs expanded per metering/visited-update step.  Chunking bounds the
#: candidate-matrix working set to ``CHUNK_PAIRS * n_ops`` entries and is
#: the granularity at which bulk budgets are charged.
CHUNK_PAIRS = 1 << 16

#: Below this closure size the vectorized column scans are not worth the
#: array round-trip; the scalar sweep runs instead.
SCAN_MIN_PAIRS = 1024


def load_numpy():
    """The numpy module when the bulk path may use it, else ``None``.

    Re-evaluated per call (not cached at import) so tests can flip
    :data:`ENV_NUMPY_FLAG` per-case without reloading the module.
    """
    if os.environ.get(ENV_NUMPY_FLAG, "1") == "0":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - the container ships numpy
        return None
    return numpy


def _as_code_array(np, codes) -> array:
    """A numpy code vector as the ``array('L')`` the closure API speaks.

    ``array('L')`` is 8 bytes on this platform's ABI (4 on ILP32);
    round-tripping through ``tobytes`` keeps the copy at memcpy speed
    rather than one Python int per element.
    """
    out = array("L")
    dtype = np.uint64 if out.itemsize == 8 else np.uint32
    out.frombytes(np.ascontiguousarray(codes, dtype=dtype).tobytes())
    return out


def _flat_int64(np, flat):
    """A flat 'L' buffer (array/memoryview) as an int64 numpy vector."""
    return np.frombuffer(flat, dtype=np.uint64).astype(np.int64, copy=False)


class PackedParents(Mapping):
    """Array-backed parent pointers for a bulk closure.

    A drop-in :class:`~collections.abc.Mapping` replacement for the
    scalar kernel's ``dict[int, int]``: keys are the discovered pair
    codes *in BFS order* (aligned with the closure's ``order``), values
    the packed predecessors.  At xor_ring n=12 the closure holds ~8.4M
    pairs — as a dict of Python ints that is on the order of a gigabyte;
    as two int64 arrays it is ~130 MB.  Lookups go through a lazily
    built sorted index (``argsort`` once, ``searchsorted`` per probe):
    witness reconstruction touches a handful of codes, and the full
    decode path was already O(m) in Python objects.

    Picklable (the two arrays only), so worker closures cross the
    process-pool boundary in packed form.
    """

    __slots__ = ("_codes", "_packed", "_np", "_order", "_sorted")

    def __init__(self, codes, packed) -> None:
        import numpy

        self._codes = codes
        self._packed = packed
        self._np = numpy
        self._order = None
        self._sorted = None

    def _index(self):
        if self._sorted is None:
            self._order = self._np.argsort(self._codes, kind="stable")
            self._sorted = self._codes[self._order]
        return self._sorted, self._order

    def _position(self, code: int) -> int:
        sorted_codes, order = self._index()
        pos = int(self._np.searchsorted(sorted_codes, code))
        if pos >= len(sorted_codes) or int(sorted_codes[pos]) != code:
            raise KeyError(code)
        return int(order[pos])

    def __getitem__(self, code: int) -> int:
        return int(self._packed[self._position(code)])

    def __contains__(self, code: object) -> bool:
        try:
            self._position(code)  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return False
        return True

    def __iter__(self):
        return (int(code) for code in self._codes)

    def __len__(self) -> int:
        return len(self._codes)

    def __reduce__(self):
        return (PackedParents, (self._codes, self._packed))

    def packed_bytes(self) -> bytes:
        """The packed predecessor values, order-aligned, as native int64
        bytes — the persistent store's serialization of this mapping
        (the codes half is the closure's ``order`` array, stored once)."""
        return (
            self._np.ascontiguousarray(self._packed, dtype=self._np.int64)
            .tobytes()
        )

    def index_bytes(self) -> bytes:
        """The sorted index's permutation as native int32 bytes, building
        it if needed.  Persisting this next to the closure lets a warm
        start skip the per-closure ``argsort`` on its first witness
        lookup — it is derived data, so a store row without it (or with
        a malformed one) just falls back to the lazy build."""
        _, order = self._index()
        return (
            self._np.ascontiguousarray(order, dtype=self._np.int32).tobytes()
        )

    def preload_index(self, blob: bytes) -> None:
        """Adopt a permutation produced by :meth:`index_bytes`.  Raises
        ``ValueError`` on a length mismatch (caller falls back to the
        lazy argsort); a permutation for the *right* codes array is the
        caller's contract — the store keys rows by content hash."""
        order = self._np.frombuffer(blob, dtype=self._np.int32)
        if len(order) != len(self._codes):
            raise ValueError("parent-index permutation length mismatch")
        self._order = order
        self._sorted = self._codes[order]


class BitsetKernel:
    """Bulk-expansion twin of a scalar ``CompiledKernel``.

    Wraps the scalar kernel's flat tables (which may be ``array('L')``
    or shared-memory ``memoryview`` casts — both are plain buffers) and
    answers :meth:`closure` with byte-identical ``order``/parents.  The
    NumPy path keeps int64 copies of the successor and column tables as
    one matrix each; the pure path reuses the scalar buffers directly.
    """

    __slots__ = ("scalar", "np", "_succ_t", "_code_dtype", "_triu_cache")

    def __init__(self, scalar, use_numpy: bool | None = None) -> None:
        self.scalar = scalar
        self.np = load_numpy() if use_numpy in (None, True) else None
        if use_numpy is True and self.np is None:
            raise RuntimeError("numpy path requested but unavailable")
        if self.np is not None:
            np = self.np
            n = scalar.n
            # Pair codes fit int32 up to ~46k states; the narrower dtype
            # halves the memory traffic of the hot loop.
            self._code_dtype = np.int32 if n * n < 2**31 else np.int64
            if scalar.successors:
                # Stored state-major (n, n_ops) and C-contiguous: the
                # per-chunk gather ``succ_t[ids]`` then copies whole
                # rows and lands directly in the (pair, op) layout the
                # discovery order needs — no transpose copies later.
                stacked = np.stack(
                    [_flat_int64(np, s) for s in scalar.successors]
                )
                self._succ_t = np.ascontiguousarray(
                    stacked.T.astype(self._code_dtype)
                )
            else:
                self._succ_t = np.empty((n, 0), dtype=self._code_dtype)
        else:
            self._succ_t = None
            self._code_dtype = None
        self._triu_cache: dict[int, tuple] = {}

    # -- Def 1-1 seeding ------------------------------------------------------

    def _seed_codes_np(
        self, source_indices: Sequence[int], sat_ids: Iterable[int] | None
    ):
        """Vectorized Def 2-8 seeding: canonical initial-pair codes in
        the exact order the scalar kernel's nested bucket loops produce
        them — buckets in first-seen (enumeration) order, members
        ascending, pairs row-major within each bucket."""
        np = self.np
        scalar = self.scalar
        n = scalar.n
        if sat_ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = _flat_int64(np, sat_ids)
        # rest-key = id minus its source-coordinate contributions — the
        # same arithmetic as CompiledKernel.buckets, one vector op per
        # source object.
        rest = ids.copy()
        for k in source_indices:
            stride = scalar.strides[k]
            rest -= ((ids // stride) % scalar.sizes[k]) * stride
        uniq, inverse, counts = np.unique(
            rest, return_inverse=True, return_counts=True
        )
        # First-occurrence position of each bucket restores the
        # first-seen bucket order np.unique's sort destroyed.
        first_pos = np.full(len(uniq), len(ids), dtype=np.int64)
        np.minimum.at(first_pos, inverse, np.arange(len(ids), dtype=np.int64))
        # Members grouped by bucket, buckets by first occurrence, member
        # order preserved (stable sort on the bucket's first position).
        perm = np.argsort(first_pos[inverse], kind="stable")
        counts_ordered = counts[np.argsort(first_pos, kind="stable")]
        chunks = []
        start = 0
        for m in counts_ordered:
            m = int(m)
            members = ids[perm[start : start + m]]
            start += m
            if m < 2:
                continue
            a, b = self._triu_cache.get(m, (None, None))
            if a is None:
                a, b = np.triu_indices(m, k=1)
                self._triu_cache[m] = (a, b)
            chunks.append(members[a] * n + members[b])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    # -- the bulk BFS ---------------------------------------------------------

    def closure(
        self,
        source_indices: Sequence[int],
        sat_ids: Iterable[int] | None = None,
        meter: BudgetMeter | None = None,
        stats: dict[str, int] | None = None,
    ) -> tuple[array, Mapping[int, int]]:
        """Bulk counterpart of ``CompiledKernel.closure`` — identical
        contract, identical output sequence.  Parents come back as
        :class:`PackedParents` on the NumPy path and a plain dict on the
        pure path; both satisfy the scalar mapping interface."""
        if self.np is not None:
            return self._closure_numpy(source_indices, sat_ids, meter, stats)
        return self._closure_pure(source_indices, sat_ids, meter, stats)

    def _closure_numpy(self, source_indices, sat_ids, meter, stats):
        np = self.np
        scalar = self.scalar
        n = scalar.n
        succ_t = self._succ_t
        n_ops = succ_t.shape[1]
        n_ops_or1 = n_ops or 1
        seeds = self._seed_codes_np(source_indices, sat_ids).astype(
            self._code_dtype, copy=False
        )
        visited = np.zeros(n * n, dtype=bool)
        if n:
            # Self-pairs (lo == hi after an operation merges the two
            # states) are never discoveries; pre-marking the diagonal
            # folds the scalar loop's lo != hi test into the one
            # visited-mask gather below.
            visited[np.arange(n, dtype=np.int64) * (n + 1)] = True
        visited[seeds] = True
        # First-occurrence scratch for intra-chunk dedup; never read
        # before being written (every gathered entry is scattered first),
        # so it starts uninitialized.
        idx_dtype = (
            np.int32 if CHUNK_PAIRS * n_ops_or1 < 2**31 else np.int64
        )
        scratch = np.empty(n * n, dtype=idx_dtype)
        discovered = len(seeds)
        order_parts = [seeds]
        parent_parts = [np.full(len(seeds), INITIAL, dtype=np.int64)]
        if meter is not None:
            meter.check(0, discovered, discovered)
        frontier = seeds
        expanded = 0
        levels = 0
        max_frontier = len(seeds)
        try:
            while len(frontier):
                levels += 1
                if len(frontier) > max_frontier:
                    max_frontier = len(frontier)
                new_codes: list = []
                new_parents: list = []
                level_new = 0
                for start in range(0, len(frontier), CHUNK_PAIRS):
                    chunk = frontier[start : start + CHUNK_PAIRS]
                    if n_ops:
                        i = chunk // n
                        j = chunk - i * n
                        si = succ_t[i]  # (C, n_ops): row gathers
                        sj = succ_t[j]
                        lo = np.minimum(si, sj)
                        hi = np.maximum(si, sj)
                        lo *= n
                        lo += hi
                        # Contiguous (pair, op) layout, so ravel() is a
                        # view and the flattened candidate stream is
                        # already in the scalar loop's pair-major,
                        # operation-minor discovery order.
                        codes = lo.ravel()
                        pos = np.flatnonzero(~visited[codes])
                        codes = codes[pos]
                        if len(codes):
                            # First-occurrence dedup without a sort:
                            # scatter stream indices in reverse so the
                            # earliest write wins, keep positions whose
                            # readback matches their own index.
                            idx = np.arange(len(codes), dtype=idx_dtype)
                            scratch[codes[::-1]] = idx[::-1]
                            first = scratch[codes] == idx
                            codes = codes[first]
                            pos = pos[first]
                            visited[codes] = True
                            # Parent pointers, packed as
                            # ``pair * n_ops + op``, reconstructed from
                            # the survivors' stream positions only.
                            pair_pos = pos // n_ops
                            packed = (
                                chunk[pair_pos].astype(np.int64) * n_ops_or1
                                + (pos - pair_pos * n_ops)
                            )
                            new_codes.append(codes)
                            new_parents.append(packed)
                            discovered += len(codes)
                            level_new += len(codes)
                    expanded += len(chunk)
                    if meter is not None:
                        remaining = len(frontier) - start - len(chunk)
                        meter.advance(
                            len(chunk), discovered, remaining + level_new
                        )
                if new_codes:
                    frontier = np.concatenate(new_codes)
                    order_parts.append(frontier)
                    parent_parts.extend(new_parents)
                else:
                    frontier = seeds[:0]
        finally:
            if stats is not None:
                stats["expansions"] = expanded
                stats["discovered"] = discovered
                stats["frontier_high_water"] = max_frontier
                stats["levels"] = levels
        order_np = (
            np.concatenate(order_parts)
            if len(order_parts) > 1
            else order_parts[0]
        )
        packed_np = (
            np.concatenate(parent_parts)
            if len(parent_parts) > 1
            else parent_parts[0]
        )
        return _as_code_array(np, order_np), PackedParents(order_np, packed_np)

    def _closure_pure(self, source_indices, sat_ids, meter, stats):
        """The dependency-free bulk path: same frontier-at-a-time
        structure and metering as the NumPy path, with membership in a
        bytearray bitset (one bit per canonical pair code) and the
        scalar flat tables read directly."""
        scalar = self.scalar
        n = scalar.n
        successors = scalar.successors
        n_ops_or1 = len(successors) or 1
        visited = bytearray((n * n + 7) >> 3)
        order: list[int] = []
        packed_parents: list[int] = []
        for bucket in scalar.buckets(source_indices, sat_ids).values():
            m = len(bucket)
            for a in range(m - 1):
                base = bucket[a] * n
                for b in range(a + 1, m):
                    pair = base + bucket[b]
                    visited[pair >> 3] |= 1 << (pair & 7)
                    order.append(pair)
                    packed_parents.append(INITIAL)
        if meter is not None:
            meter.check(0, len(order), len(order))
        cursor = 0
        expanded = 0
        levels = 0
        max_frontier = len(order)
        record = order.append
        record_parent = packed_parents.append
        try:
            while cursor < len(order):
                level_end = len(order)
                levels += 1
                frontier = level_end - cursor
                if frontier > max_frontier:
                    max_frontier = frontier
                while cursor < level_end:
                    chunk_end = min(cursor + CHUNK_PAIRS, level_end)
                    chunk_size = chunk_end - cursor
                    for pos in range(cursor, chunk_end):
                        pair = order[pos]
                        i, j = divmod(pair, n)
                        packed = pair * n_ops_or1
                        for successor in successors:
                            si = successor[i]
                            sj = successor[j]
                            if si != sj:
                                code = (
                                    si * n + sj if si < sj else sj * n + si
                                )
                                byte = code >> 3
                                bit = 1 << (code & 7)
                                if not visited[byte] & bit:
                                    visited[byte] |= bit
                                    record(code)
                                    record_parent(packed)
                            packed += 1
                    cursor = chunk_end
                    expanded += chunk_size
                    if meter is not None:
                        # Remaining work = everything discovered but not
                        # yet expanded; zero exactly at completion.
                        meter.advance(
                            chunk_size, len(order), len(order) - cursor
                        )
        finally:
            if stats is not None:
                stats["expansions"] = expanded
                stats["discovered"] = len(order)
                stats["frontier_high_water"] = max_frontier
                stats["levels"] = levels
        return array("L", order), dict(zip(order, packed_parents))


# -- vectorized column scans --------------------------------------------------


def touched_scan(n: int, order) -> bytes:
    """The *read set* of a closure as a state bitset: bit ``i`` (little-
    endian, bit ``i & 7`` of byte ``i >> 3``) is set iff state ``i``
    appears as a component of some pair in ``order``.

    This is the provenance the persistent store records for delta
    invalidation: the BFS read every operation's successor table exactly
    at these ids (each expanded pair applies each operation to both of
    its components), so a modified system whose changed successor
    entries avoid this set replays the closure bit-identically — same
    order, same parents, same witnesses (docs/FORMALISM.md, "Persistent
    memoization").  Derived from the order array after the fact, so the
    hot BFS loops pay nothing for the tracking.
    """
    np = load_numpy()
    if np is not None and len(order):
        codes = _flat_int64(np, order)
        mask = np.zeros(n, dtype=bool)
        mask[codes // n] = True
        mask[codes % n] = True
        return np.packbits(mask, bitorder="little").tobytes()
    out = bytearray((n + 7) >> 3)
    for code in order:
        i, j = divmod(code, n)
        out[i >> 3] |= 1 << (i & 7)
        out[j >> 3] |= 1 << (j & 7)
    return bytes(out)


def first_differing_scan(kernel, order: array) -> dict[str, int] | None:
    """Vectorized Def 5-5 single-target scan over a closure's order:
    for each object name, the earliest pair code whose components differ
    there.  Returns ``None`` when the NumPy path is off or the closure
    is too small to be worth the array round-trip (caller falls back to
    the scalar sweep — results are identical either way: diagonal pairs
    never enter a closure, and ``argmax`` of the difference mask is by
    construction the earliest BFS position)."""
    np = load_numpy()
    if np is None or len(order) < SCAN_MIN_PAIRS:
        return None
    codes = _flat_int64(np, order)
    i = codes // kernel.n
    j = codes % kernel.n
    first: dict[str, int] = {}
    for name, column in zip(kernel.names, kernel.columns):
        col = _flat_int64(np, column)
        diff = col[i] != col[j]
        k = int(np.argmax(diff))
        if diff[k]:
            first[name] = int(codes[k])
    return first


def first_differing_at_all_scan(
    kernel, order: array, targets: Sequence[str]
) -> tuple[bool, int | None]:
    """Vectorized Def 5-7 set-target scan: the earliest pair differing
    at *every* target simultaneously.  Returns ``(handled, code)``;
    ``handled=False`` means the caller should run the scalar sweep."""
    np = load_numpy()
    if np is None or len(order) < SCAN_MIN_PAIRS:
        return False, None
    codes = _flat_int64(np, order)
    i = codes // kernel.n
    j = codes % kernel.n
    column_of = dict(zip(kernel.names, kernel.columns))
    mask = np.ones(len(codes), dtype=bool)
    for target in targets:
        col = _flat_int64(np, column_of[target])
        mask &= col[i] != col[j]
        if not mask.any():
            return True, None
    k = int(np.argmax(mask))
    return True, int(codes[k])
