"""Strong dependency: the paper's central formalism.

``beta`` *strongly depends* on a source set ``A`` after history ``H`` given
an initial constraint ``phi`` (Def 2-10) iff there exist two states, both
satisfying phi and equal except possibly at A, for which executing H leaves
different values in beta.  Written ``A |>_phi^H beta``.

This captures information transmission cybernetically: variety in A can be
*conveyed* to beta.  ``not (A |>_phi^H beta)`` is exactly "no information is
transmitted from A to beta by H" in a phi-constrained system (Def 2-1 when
phi = tt), subject to the autonomy caveats of chapter 5.

Definitions implemented here:

- Def 2-1/2-4/2-6: unconstrained dependency (phi = tt).
- Def 2-8/2-9/2-10: dependency given an initial constraint phi.
- Def 2-7/2-11: existential-history dependency ``A |>_phi beta``; exact for
  finite systems via the pair-graph fixpoint in
  :mod:`repro.analysis.explorer`, and available here as a bounded search.
- Def 5-5/5-6/5-7: set-valued targets ``A |>_phi^H B`` (states must differ
  at *every* object of B after H).

Every positive answer carries a :class:`Witness` — the concrete state pair —
and every API returns a result object that explains itself.

Complexity: the checker partitions the phi-states by their values *outside*
A (two states are candidates iff they share that restriction, Def 1-1), so
a history check costs ``O(|sat(phi)| * |H|)`` operation applications rather
than a quadratic pair scan.  Since PR 3, :func:`transmits` and
:func:`transmits_to_set` route through the shared engine's batched
fixed-history path (composed successor arrays on the compiled kernel; one
sweep answers all targets of ``(A, H, phi)``, memoized); the direct
checkers survive as ``_seed_transmits`` / ``_seed_transmits_to_set`` —
the executable specification and the fallback for foreign operations.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.budget import ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.errors import ConstraintError, ForeignOperationError
from repro.core.state import State, Value
from repro.core.system import History, Operation, System
from repro.obs.provenance import Provenance


@dataclass(frozen=True)
class Witness:
    """A concrete demonstration that ``A |>_phi^H B``.

    ``sigma1`` and ``sigma2`` satisfy phi, agree everywhere outside
    ``sources``, and executing ``history`` yields states differing at every
    object of ``targets`` (for the single-target forms, at the one target).
    """

    sources: frozenset[str]
    targets: frozenset[str]
    history: History
    sigma1: State
    sigma2: State

    @property
    def before(self) -> tuple[State, State]:
        return (self.sigma1, self.sigma2)

    @property
    def after(self) -> tuple[State, State]:
        return (self.history(self.sigma1), self.history(self.sigma2))

    def describe(self) -> str:
        a1, a2 = self.after
        lines = [
            f"sources A = {sorted(self.sources)}, targets = {sorted(self.targets)}",
            f"history   = {self.history!r}",
            f"sigma1    = {self.sigma1!r}",
            f"sigma2    = {self.sigma2!r}",
        ]
        for target in sorted(self.targets):
            lines.append(
                f"H(sigma1).{target} = {a1[target]!r}  !=  "
                f"H(sigma2).{target} = {a2[target]!r}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class DependencyResult:
    """Outcome of a strong-dependency query.

    Truthiness equals :attr:`holds`, so results read naturally::

        if transmits(system, {"alpha"}, "beta", h):
            ...
    """

    holds: bool
    sources: frozenset[str]
    targets: frozenset[str]
    constraint_name: str
    witness: Witness | None = field(default=None)
    #: How the answer was produced (which kernel, memo hit or fresh,
    #: budget state) — see :class:`repro.obs.provenance.Provenance`.
    #: Excluded from equality/repr: two results are the same verdict even
    #: when one came from the memo and the other from a fresh BFS.
    provenance: Provenance | None = field(default=None, compare=False, repr=False)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        src = sorted(self.sources)
        tgt = sorted(self.targets)
        verdict = "|>" if self.holds else "not |>"
        head = f"{src} {verdict}_{self.constraint_name} {tgt}"
        if self.provenance is not None:
            head += f"\n[{self.provenance.describe()}]"
        if self.witness is not None:
            return head + "\n" + self.witness.describe()
        return head


def _resolve(
    system: System,
    constraint: Constraint | None,
) -> Constraint:
    if constraint is None:
        return Constraint.true(system.space)
    if constraint.space != system.space:
        raise ConstraintError(
            "constraint and system are over different spaces "
            f"({constraint.space!r} vs {system.space!r})"
        )
    return constraint


def _groups(
    system: System,
    sources: frozenset[str],
    constraint: Constraint,
) -> Iterator[list[State]]:
    """Partition sat(phi) into classes of states equal except at ``sources``.

    Each class is a maximal set of candidate (sigma1, sigma2) pairs for
    Def 2-8; singleton classes cannot witness dependency and are skipped.
    """
    buckets: dict[tuple[Value, ...], list[State]] = {}
    for state in constraint.states():
        buckets.setdefault(state.restrict_away(sources), []).append(state)
    for bucket in buckets.values():
        if len(bucket) > 1:
            yield bucket


def transmits(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
    budget: ExecutionBudget | None = None,
) -> DependencyResult:
    """Decide ``A |>_phi^H beta`` (Def 2-10; Def 2-6 when phi is omitted).

    Returns a result whose witness, when positive, is the concrete state
    pair conveying A's variety to ``target``.

    Routed through the shared :class:`~repro.core.engine.DependencyEngine`:
    one sweep of the composed successor array of H over the Def 1-1
    buckets of sat(phi) answers every target of ``(A, H, phi)`` at once,
    and is memoized on the engine.  Histories containing operations the
    system does not own (ad-hoc :meth:`Operation.then` composites) fall
    back to the direct per-state evaluation — same verdicts, same
    witnesses, just without the batching (:func:`_seed_transmits` is that
    reference path).

    >>> from repro.core.state import boolean_space
    >>> from repro.core.system import Operation, System
    >>> sp = boolean_space("alpha", "beta")
    >>> copy = Operation("copy", lambda s: s.replace(beta=s["alpha"]))
    >>> sys_ = System(sp, [copy])
    >>> bool(transmits(sys_, {"alpha"}, "beta", copy))
    True
    """
    from repro.core.engine import shared_engine  # lazy: engine imports us

    try:
        return shared_engine(system).depends_history(
            sources, target, history, constraint, budget
        )
    except ForeignOperationError:
        return _seed_transmits(system, sources, target, history, constraint)


def _seed_transmits(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> DependencyResult:
    """The direct Def 2-10 checker: re-executes H per state, per query.

    Kept as the executable specification the engine's batched
    fixed-history path is property-tested against, and as the fallback
    for histories built from foreign operation objects.
    """
    if isinstance(history, Operation):
        history = History.of(history)
    source_set = system.space.check_names(sources)
    system.space.check_names([target])
    phi = _resolve(system, constraint)
    for bucket in _groups(system, source_set, phi):
        first_state: State | None = None
        first_value: Value = None
        for state in bucket:
            value = history(state)[target]
            if first_state is None:
                first_state, first_value = state, value
            elif value != first_value:
                witness = Witness(
                    sources=source_set,
                    targets=frozenset([target]),
                    history=history,
                    sigma1=first_state,
                    sigma2=state,
                )
                return DependencyResult(
                    True,
                    source_set,
                    frozenset([target]),
                    phi.name,
                    witness,
                    provenance=Provenance(
                        kernel="seed-fallback", witness_length=len(history)
                    ),
                )
    return DependencyResult(
        False,
        source_set,
        frozenset([target]),
        phi.name,
        provenance=Provenance(kernel="seed-fallback"),
    )


def transmits_to_set(
    system: System,
    sources: Iterable[str],
    targets: Iterable[str],
    history: History | Operation,
    constraint: Constraint | None = None,
    budget: ExecutionBudget | None = None,
) -> DependencyResult:
    """Decide ``A |>_phi^H B`` for a *set* of targets (Def 5-6).

    Def 5-5 requires the two final states to differ at **every** object of
    B simultaneously, which is strictly stronger than each single-target
    dependency holding (Theorem 5-3 gives only the forward implication).

    Routed through the shared engine like :func:`transmits`; the engine
    additionally prunes via the single-target table (Theorem 5-3's
    forward direction) before running the in-bucket pair scan.
    """
    from repro.core.engine import shared_engine  # lazy: engine imports us

    try:
        return shared_engine(system).depends_history_set(
            sources, targets, history, constraint, budget
        )
    except ForeignOperationError:
        return _seed_transmits_to_set(system, sources, targets, history, constraint)


def _seed_transmits_to_set(
    system: System,
    sources: Iterable[str],
    targets: Iterable[str],
    history: History | Operation,
    constraint: Constraint | None = None,
) -> DependencyResult:
    """The direct Def 5-6 checker (reference path; see
    :func:`_seed_transmits`).  Each bucket member's final state is
    evaluated once — not once per target — before the pair scan."""
    if isinstance(history, Operation):
        history = History.of(history)
    source_set = system.space.check_names(sources)
    target_set = system.space.check_names(targets)
    if not target_set:
        raise ConstraintError("target set B must be non-empty")
    phi = _resolve(system, constraint)
    target_list = sorted(target_set)
    for bucket in _groups(system, source_set, phi):
        finals = [history(state) for state in bucket]
        outcomes = [
            (state, tuple(final[t] for t in target_list))
            for state, final in zip(bucket, finals)
        ]
        for i, (s1, v1) in enumerate(outcomes):
            for s2, v2 in outcomes[i + 1 :]:
                if all(x != y for x, y in zip(v1, v2)):
                    witness = Witness(
                        sources=source_set,
                        targets=target_set,
                        history=history,
                        sigma1=s1,
                        sigma2=s2,
                    )
                    return DependencyResult(
                        True,
                        source_set,
                        target_set,
                        phi.name,
                        witness,
                        provenance=Provenance(
                            kernel="seed-fallback", witness_length=len(history)
                        ),
                    )
    return DependencyResult(
        False,
        source_set,
        target_set,
        phi.name,
        provenance=Provenance(kernel="seed-fallback"),
    )


def no_transmission(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> bool:
    """Def 2-1 (and its phi-relative form): no information is transmitted
    from ``sources`` to ``target`` by ``history``."""
    return not transmits(system, sources, target, history, constraint)


def depends_within(
    system: System,
    sources: Iterable[str],
    target: str,
    max_length: int,
    constraint: Constraint | None = None,
) -> DependencyResult:
    """Bounded search for ``A |>_phi beta`` (Def 2-11): does *some* history
    of length at most ``max_length`` transmit?

    For an exact (unbounded) answer on finite systems use
    :func:`repro.analysis.explorer.depends_ever`, which runs the pair-graph
    fixpoint; this bounded form is the convenient hammer for small examples
    where a short witness is expected.
    """
    source_set = system.space.check_names(sources)
    phi = _resolve(system, constraint)
    for history in system.histories(max_length):
        result = transmits(system, source_set, target, history, phi)
        if result:
            return result
    return DependencyResult(False, source_set, frozenset([target]), phi.name)


def dependency_pairs(
    system: System,
    history: History | Operation,
    constraint: Constraint | None = None,
    sources_of_interest: Iterable[frozenset[str]] | None = None,
) -> dict[tuple[frozenset[str], str], DependencyResult]:
    """Compute ``A |>_phi^H beta`` for a family of sources against every
    target object — the raw material of the Worth measure (section 3.6).

    By default the sources are all singletons; pass explicit frozensets to
    query clumps (chapter 5's pseudo-objects).
    """
    if sources_of_interest is None:
        sources_of_interest = [frozenset([n]) for n in system.space.names]
    results: dict[tuple[frozenset[str], str], DependencyResult] = {}
    for source in sources_of_interest:
        for target in system.space.names:
            results[(source, target)] = transmits(
                system, source, target, history, constraint
            )
    return results


def sources_transmitting(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> frozenset[str]:
    """The singletons of A that individually transmit to the target.

    Theorem 2-6 guarantees this set is non-empty whenever
    ``A |>_phi^H beta`` holds and phi is autonomous.
    """
    return frozenset(
        name
        for name in system.space.check_names(sources)
        if transmits(system, {name}, target, history, constraint)
    )
