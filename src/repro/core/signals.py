"""Cooperative SIGINT/SIGTERM handling for long-running runs.

Long CLI paths — a big governed search, ``repro quantify --capacity``,
an engine ``prewarm_hot`` fan-out — used to die mid-map on Ctrl-C: the
default ``KeyboardInterrupt`` unwinds wherever the interpreter happens
to be, losing every closure still in flight and skipping the persistent
store flush.  The serve layer has the same problem spelled SIGTERM.

:func:`interrupt_token` turns the first signal into a *cooperative*
cancellation instead: it yields a
:class:`~repro.core.budget.CancellationToken` wired to SIGINT/SIGTERM,
which callers thread into an :class:`~repro.core.budget.ExecutionBudget`.
Every governed loop observes the token at its next budget check and
raises :class:`~repro.core.budget.BudgetExceededError` with reason
``"cancelled"`` — the caller then persists completed work
(:meth:`DependencyEngine.persist_memos`) and exits cleanly.  The second
signal falls through to the previous handler (normally: process death),
so a wedged run can still be force-killed.

Handlers can only be installed from the main thread; elsewhere the token
is yielded un-wired (still usable for manual cancellation), so library
code may call this unconditionally.
"""

from __future__ import annotations

import signal
import threading
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro.core.budget import CancellationToken

#: Conventional exit code for a run ended by an interrupt signal
#: (128 + SIGINT), used by the CLI's graceful-interrupt paths.
EXIT_INTERRUPTED = 130


def reset_inherited_signals() -> None:
    """Detach a pool worker from its parent's signal plumbing.

    Under the ``fork`` start method a worker inherits the parent's
    C-level signal handlers *and* its ``signal.set_wakeup_fd`` pipe.  If
    the parent runs an asyncio loop with ``add_signal_handler`` (the
    serve layer), a SIGTERM delivered to the *worker* — e.g. by pool
    shutdown after a sibling died — would write through the shared
    wakeup pipe and fire the handler in the *parent*, draining a healthy
    server because one of its children was told to stop.  Pool worker
    initializers call this first to restore default delivery.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover
            pass


@contextmanager
def interrupt_token(
    signums: Sequence[int] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[CancellationToken]:
    """Yield a :class:`CancellationToken` cancelled by the first of
    ``signums``; restore the previous handlers on exit.

    First signal: cancel the token *and* restore the previous handlers,
    so a second signal behaves as if this context never existed (for
    SIGINT, raise ``KeyboardInterrupt``; for SIGTERM, terminate).
    """
    token = CancellationToken()
    if threading.current_thread() is not threading.main_thread():
        # signal.signal raises ValueError off the main thread; the token
        # still works for manual / programmatic cancellation.
        yield token
        return
    previous: dict[int, object] = {}

    def restore() -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - teardown race
                pass

    def on_signal(signum: int, frame: object) -> None:
        token.cancel()
        restore()

    for signum in signums:
        previous[signum] = signal.signal(signum, on_signal)
    try:
        yield token
    finally:
        restore()
