"""Inferential Dependency (section 7.2) — the paper's work-in-progress
alternative model, made exact for finite systems.

The sketch: beta *inferentially depends* on A after H given phi if an
observer who sees only beta's final value can make some inference about
A's initial value that "says more" about A than phi alone.

For a finite system the observer's knowledge is computable.  Before
observing, phi alone allows::

    prior(A) = { sigma.A | phi(sigma) }

After observing ``H(sigma).beta = v``::

    K(v) = { sigma.A | phi(sigma), H(sigma).beta = v }

and inferential dependency holds iff some attainable observation strictly
shrinks the prior: ``K(v)`` a proper subset of ``prior(A)``.

Two variants, as the paper anticipates ("we can define Inferential
Dependency in two different ways; one would indicate contingent
information transmission, one would not"):

- :func:`inferentially_depends` — the **non-contingent** variant above.
  On ``beta <- (a1 + a2) mod N`` it reports *no* dependency from a1
  alone (any beta value leaves a1 uniform), matching section 7.2's
  discussion.
- :func:`contingently_depends` — the **contingent** variant: the shrink
  is evaluated *within* each context (each assignment of the objects
  outside A).  A short argument (verified by the property tests) shows
  this variant coincides exactly with strong dependency: within a
  context, distinct A-values are distinct states, so a non-constant
  observation map shrinks knowledge iff it distinguishes two states
  differing only at A.

Headline reproductions (benchmark E24):

- the section 5.2 example (``beta <- alpha1`` under ``alpha1 = alpha2``):
  strong dependency denies both singletons; inferential dependency
  affirms both — "Inferential Dependency would indicate that information
  is transmitted from both alpha1 and alpha2";
- the *monotonicity failure* the paper predicts: imposing the
  tag-coupling constraint **adds** an inferential path from alpha2 that
  the unconstrained system lacks (so Theorem 2-3 cannot hold for
  inferential dependency);
- the claimed agreement with strong dependency for relatively autonomous
  constraints, fuzz-checked.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.constraints import Constraint
from repro.core.errors import ConstraintError
from repro.core.state import State, Value
from repro.core.system import History, Operation, System


@dataclass(frozen=True)
class Inference:
    """A concrete informative observation.

    Observing ``observation`` at the target shrinks the observer's
    knowledge about A's initial value from ``prior`` to ``posterior``.
    """

    sources: frozenset[str]
    target: str
    observation: Value
    prior: frozenset[tuple[Value, ...]]
    posterior: frozenset[tuple[Value, ...]]

    def describe(self) -> str:
        return (
            f"seeing {self.target} = {self.observation!r} narrows "
            f"{sorted(self.sources)} from {len(self.prior)} to "
            f"{len(self.posterior)} possibilities"
        )


def _resolve(system: System, constraint: Constraint | None) -> Constraint:
    phi = constraint if constraint is not None else Constraint.true(system.space)
    if phi.space != system.space:
        raise ConstraintError("constraint and system are over different spaces")
    return phi


def knowledge_sets(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> dict[Value, frozenset[tuple[Value, ...]]]:
    """``K(v)`` for every attainable observation v: the A-values
    compatible with phi and with seeing ``target = v`` after H."""
    if isinstance(history, Operation):
        history = History.of(history)
    source_set = system.space.check_names(sources)
    system.space.check_names([target])
    phi = _resolve(system, constraint)
    out: dict[Value, set[tuple[Value, ...]]] = {}
    for state in phi.states():
        observation = history(state)[target]
        out.setdefault(observation, set()).add(state.project(source_set))
    return {v: frozenset(ks) for v, ks in out.items()}


def inferentially_depends(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> Inference | None:
    """The non-contingent variant: does some observation say more about A
    than phi alone?  Returns the most informative shrink, or None."""
    source_set = system.space.check_names(sources)
    table = knowledge_sets(system, source_set, target, history, constraint)
    if not table:
        return None
    prior = frozenset().union(*table.values())
    best: Inference | None = None
    for observation, posterior in sorted(table.items(), key=lambda kv: repr(kv[0])):
        if posterior < prior and (
            best is None or len(posterior) < len(best.posterior)
        ):
            best = Inference(
                sources=source_set,
                target=target,
                observation=observation,
                prior=prior,
                posterior=posterior,
            )
    return best


def contingently_depends(
    system: System,
    sources: Iterable[str],
    target: str,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> Inference | None:
    """The contingent variant: the shrink is evaluated within each
    *context* (fixed values of every object outside A).

    Provably equivalent to strong dependency (Def 2-10); kept as an
    independent implementation so the property suite can confirm the
    equivalence rather than assume it.
    """
    if isinstance(history, Operation):
        history = History.of(history)
    source_set = system.space.check_names(sources)
    system.space.check_names([target])
    phi = _resolve(system, constraint)
    contexts: dict[tuple[Value, ...], dict[Value, set[tuple[Value, ...]]]] = {}
    for state in phi.states():
        context = state.restrict_away(source_set)
        observation = history(state)[target]
        contexts.setdefault(context, {}).setdefault(observation, set()).add(
            state.project(source_set)
        )
    for table in contexts.values():
        prior = frozenset().union(*(frozenset(k) for k in table.values()))
        for observation, posterior in table.items():
            posterior = frozenset(posterior)
            if posterior < prior:
                return Inference(
                    sources=source_set,
                    target=target,
                    observation=observation,
                    prior=prior,
                    posterior=posterior,
                )
    return None


def inferential_paths(
    system: System,
    history: History | Operation,
    constraint: Constraint | None = None,
) -> frozenset[tuple[str, str]]:
    """All (singleton source, target) pairs with non-contingent
    inferential dependency over the given history — used to exhibit the
    paper's monotonicity failure (adding constraint can ADD paths)."""
    out: set[tuple[str, str]] = set()
    for source in system.space.names:
        for target in system.space.names:
            if inferentially_depends(
                system, {source}, target, history, constraint
            ):
                out.add((source, target))
    return frozenset(out)
