"""Shared pair-graph dependency engine: one BFS per ``(A, phi)``.

The exact existential-history decision (Def 2-7/2-11) runs a BFS over the
*pair graph* — nodes are state pairs, edges apply one operation to both
components (see :mod:`repro.core.reachability` for the construction).
The crucial observation is that the **explored node set depends only on
the source set A and the constraint phi**: the target ``beta`` enters the
algorithm solely through the stopping test ``s1.beta != s2.beta``.  Every
batched analysis in the library (dependency matrices, Worth, audits, flow
graphs, the problem checkers) asks about *many* targets for the *same*
``(A, phi)``, so running an independent BFS per target redoes identical
traversals n times over.

:class:`DependencyEngine` fixes that:

1. **Compiled integer kernel** (default).  The system is compiled once by
   :class:`~repro.core.compiled.CompiledSystem`: dense state ids, one flat
   successor array per operation, per-object value columns.  The BFS then
   runs over *canonical unordered* pairs encoded as single ints — sound by
   the swap-symmetry lemma (docs/FORMALISM.md), and roughly half the
   nodes of the ordered pair graph with O(1) integer work per edge.
   ``compiled=False`` keeps the PR-1 object path (tabulated ``State``
   dicts, ordered pairs) as the in-tree reference the property tests and
   benchmarks compare against.
2. **One closure per (A, phi), memoized.**  The full reachable pair set is
   computed once — with parent pointers and in BFS (shortest-path) order —
   and cached on the engine.  :meth:`depends_ever` then answers *every*
   target ``beta`` (and every set target ``B``, Def 5-5/5-7) from that
   single closure, including shortest-witness reconstruction.  Witnesses
   decode back to :class:`~repro.core.state.State` objects only at this
   API boundary.
3. **Batched APIs with process fan-out.**  :meth:`matrix` and
   :meth:`closure` answer whole source-family × target-grid queries.  With
   ``max_workers`` they fan the independent per-source closures out across
   a :class:`~concurrent.futures.ProcessPoolExecutor` — the compiled hot
   loop is pure int/array work, which threads would serialize on the GIL —
   shipping the picklable kernel once per worker (``executor="thread"``
   restores the PR-1 thread pool; non-compiled engines always use it).

Caching semantics: an engine is bound to one immutable
:class:`~repro.core.system.System`; operations, spaces and constraints are
immutable by construction, so cache entries never invalidate.  Closures
are keyed by ``(frozenset(A), constraint-object)`` — two *distinct*
:class:`~repro.core.constraints.Constraint` instances with the same
predicate occupy separate entries (``None`` always shares one entry).
:func:`shared_engine` hands out one engine per system (weakly referenced),
which is how the thin wrappers in :mod:`repro.core.reachability` share
work across the whole library.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
import weakref
from array import array
from collections.abc import Iterable, Mapping
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor

from repro import obs
from repro.core import faults
from repro.core.budget import (
    BudgetExceededError,
    BudgetMeter,
    ExecutionBudget,
    ExecutionLog,
    ExecutionReport,
    PartialResult,
)
from repro.core.cache import LRUCache as _LRUCache
from repro.core.compiled import (
    BITSET_AUTO_MIN_STATES,
    COMPOSED_CAP,
    KERNEL_MODES,
    SAT_IDS_CAP,
    CompiledClosure,
    CompiledSystem,
    _worker_closure,
    _worker_init,
)
from repro.core.constraints import Constraint
from repro.core.shm import KernelArena
from repro.core.store import PersistentStore, sat_key
from repro.core.dependency import DependencyResult, Witness
from repro.core.errors import ConstraintError, ForeignOperationError
from repro.core.state import State
from repro.core.system import History, Operation, System, transition_table
from repro.obs.provenance import Provenance

Pair = tuple[State, State]

#: Distinguishes "never computed" from a memoized negative (``None``) in
#: the set-target memo.
_UNCOMPUTED = object()

#: Failures the fault-tolerant pool treats as retryable: a worker died
#: mid-map (``BrokenExecutor``/``EOFError``), the platform refused a pool
#: (``OSError``), or an injected transient task error.  Budget trips are
#: deliberately *not* here — exceeding a budget is a verdict about the
#: query, not about the executor, and must propagate.
_POOL_FAILURES = (BrokenExecutor, OSError, EOFError, faults.InjectedFaultError)

#: Pool re-creations after a mid-map failure before degrading to threads.
_POOL_RETRIES = 2
#: Capped exponential backoff between pool retries (seconds).
_RETRY_BASE_DELAY = 0.05
_RETRY_MAX_DELAY = 1.0

#: LRU caps on the fixed-history memos.  The closure memo stays unbounded
#: (closures are few and huge — recomputing one costs a full BFS), but the
#: history memos grow with the number of *histories* queried, which
#: ``System.histories(max_length)`` sweeps make combinatorial.
#: (``_LRUCache`` itself moved to :mod:`repro.core.cache` in PR 6 so the
#: compiled substrate can bound its own memos without a circular import.)
_HISTORY_TABLE_CAP = 1024
_HISTORY_SET_CAP = 4096
#: LRU cap on the Def 1-1 bucket-partition memo: one entry per (source
#: columns, flow key) pair actually swept.  Bucket lists are O(sat(phi))
#: ints, so a few hundred entries bound memory while keeping the serve
#: layer's repeated sweeps free.
_BUCKETS_CAP = 512

#: How often a *governed* waiter blocked behind another thread's
#: single-flight compute re-checks its own deadline/cancellation token
#: (seconds).  Ungoverned waiters block outright.
_FLIGHT_POLL = 0.02

#: Environment override for the engine's kernel selection mode; any value
#: in :data:`~repro.core.compiled.KERNEL_MODES` ("auto"/"scalar"/"bitset").
ENV_KERNEL = "REPRO_KERNEL"


def _resolve_kernel_mode(kernel: str | None) -> str:
    """The engine's kernel-selection mode: the explicit constructor
    argument, else the :data:`ENV_KERNEL` environment variable, else
    ``auto``.  Rejects unknown modes loudly — a typo silently falling
    back to scalar would be an invisible 10x."""
    if kernel is None:
        kernel = os.environ.get(ENV_KERNEL) or "auto"
    if kernel not in KERNEL_MODES:
        raise ValueError(
            f"unknown kernel mode {kernel!r}; expected one of {KERNEL_MODES}"
        )
    return kernel


class PairClosure:
    """The reachable pair set for one ``(A, phi)`` — target-independent.

    ``pairs`` lists every reachable pair in BFS order (so the first pair
    satisfying any stopping test yields a shortest witness); ``parents``
    maps each pair to ``(predecessor pair, operation name)``, or ``None``
    for the Def 2-8 initial pairs.

    On a compiled engine the pairs are *canonical* (unordered, decoded
    with the lower state id first); on the PR-1 object path they are the
    ordered pairs the original BFS explored.  Shortest-path structure is
    identical either way (swap-symmetry lemma, docs/FORMALISM.md).
    """

    __slots__ = ("sources", "constraint_name", "pairs", "parents", "_first_diff")

    def __init__(
        self,
        sources: frozenset[str],
        constraint_name: str,
        pairs: tuple[Pair, ...],
        parents: Mapping[Pair, tuple[Pair, str] | None],
    ) -> None:
        self.sources = sources
        self.constraint_name = constraint_name
        self.pairs = pairs
        self.parents = parents
        self._first_diff: dict[str, Pair] | None = None

    def __len__(self) -> int:
        return len(self.pairs)

    def first_differing(self) -> Mapping[str, Pair]:
        """For each object name, the earliest reachable pair differing
        there (one sweep over the BFS order, cached).

        A name absent from the mapping is one no reachable pair
        distinguishes — i.e. ``not (A |>_phi name)``.
        """
        if self._first_diff is None:
            first: dict[str, Pair] = {}
            for pair in self.pairs:
                s1, s2 = pair
                for name in s1.differs_at(s2):
                    if name not in first:
                        first[name] = pair
            self._first_diff = first
        return self._first_diff

    def first_differing_at_all(self, targets: Iterable[str]) -> Pair | None:
        """The earliest reachable pair differing at *every* object of the
        target set (Def 5-5/5-7), or ``None``."""
        first = self.first_differing()
        target_list = sorted(targets)
        # If some member of B is never distinguished, no pair differs at
        # all of B; skip the scan entirely.
        if not all(t in first for t in target_list):
            return None
        for pair in self.pairs:
            s1, s2 = pair
            if all(s1[t] != s2[t] for t in target_list):
                return pair
        return None

    def witness_path(self, pair: Pair) -> tuple[tuple[str, ...], Pair]:
        """The operation names leading from an initial pair to ``pair``,
        plus that initial pair (the witness ``sigma1, sigma2``)."""
        ops: list[str] = []
        cursor = pair
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            cursor, op_name = parent
            ops.append(op_name)
        ops.reverse()
        return tuple(ops), cursor


class DependencyEngine:
    """Answers exact existential-history dependency queries from shared,
    memoized pair-graph closures.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("a", "m", "b")
    >>> _ = b.op_assign("d1", "m", var("a")).op_assign("d2", "b", var("m"))
    >>> engine = DependencyEngine(b.build())
    >>> result = engine.depends_ever({"a"}, "b")
    >>> bool(result), len(result.witness.history)
    (True, 2)
    >>> bool(engine.depends_ever({"b"}, "a"))  # same closure, free answer
    False
    """

    def __init__(
        self,
        system: System,
        compiled: bool = True,
        budget: ExecutionBudget | None = None,
        kernel: str | None = None,
        store: "PersistentStore | str | os.PathLike | None" = None,
    ) -> None:
        self.system = system
        self._use_compiled = compiled
        #: Optional persistent memo store (a :class:`PersistentStore`, a
        #: path, or ``None``): a third memo tier below the RAM dicts —
        #: RAM -> disk -> compute.  Compiled engines only; the object
        #: path has no canonical integer encoding to key rows by.
        self._store = PersistentStore.coerce(store)
        self._store_hash: str | None = None
        #: Kernel selection (see :data:`~repro.core.compiled.KERNEL_MODES`):
        #: ``auto`` (default) runs the bulk bitset kernel on spaces of at
        #: least :data:`~repro.core.compiled.BITSET_AUTO_MIN_STATES` states
        #: and the scalar kernel below; ``scalar``/``bitset`` force one.
        #: ``None`` defers to the ``REPRO_KERNEL`` environment variable.
        self._kernel_mode = _resolve_kernel_mode(kernel)
        #: Engine-wide default :class:`~repro.core.budget.ExecutionBudget`.
        #: Every governed loop (closure BFS, history sweep, flow sweep)
        #: starts a fresh meter from it; per-call ``budget=`` arguments
        #: override it.  ``None`` leaves the hot loops unmetered.
        self.budget = budget
        #: Per-engine :class:`~repro.core.budget.ExecutionLog`: one
        #: :class:`~repro.core.budget.ExecutionReport` per governed run
        #: and per warm fan-out (retries, degradations, fallback path).
        self.execution_log = ExecutionLog()
        self._compiled: CompiledSystem | None = None
        self._tables: tuple[tuple[str, Mapping[State, State]], ...] | None = None
        self._closures: dict[
            tuple[frozenset[str], Constraint | None], PairClosure | CompiledClosure
        ] = {}
        self._decoded: dict[
            tuple[frozenset[str], Constraint | None], PairClosure
        ] = {}
        self._step_flows: dict[
            Constraint | None, dict[str, frozenset[tuple[str, str]]]
        ] = {}
        self._ops: tuple[Operation, ...] = system.operations
        self._op_position: dict[str, int] = {
            op.name: k for k, op in enumerate(self._ops)
        }
        self._history_maps: dict[tuple[int, ...], Mapping[State, State]] = {}
        # Bounded LRU memos (see _LRUCache): keys are
        # (A, op-indices, flow-key) and (A, op-indices, flow-key, B);
        # values are target->pair tables and set-target pairs (or None).
        self._history_tables = _LRUCache(
            _HISTORY_TABLE_CAP, "engine.history_table.evictions"
        )
        self._history_set_memo = _LRUCache(
            _HISTORY_SET_CAP, "engine.history_set.evictions"
        )
        self._bucket_memo = _LRUCache(_BUCKETS_CAP, "engine.buckets.evictions")
        #: Single-flight locks, one per in-progress memo key (see
        #: :meth:`_flight`): the serve layer's executor threads hit one
        #: session engine concurrently, and without these two threads
        #: missing the same key would run the same BFS twice.
        self._flights: dict[object, threading.Lock] = {}
        #: Closure request counts per (A, phi) key — every `_closure_info`
        #: call increments, memo hit or miss, so the ranking reflects
        #: demand, not cache state.  Feeds :meth:`hot_closures` and the
        #: hotness-first ordering of warm fan-outs.
        self._hotness: dict[
            tuple[frozenset[str], Constraint | None], int
        ] = {}
        self._lock = threading.Lock()

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Sizes (and, for the bounded memos, capacities and eviction
        totals) of every engine cache — the observability surface the
        ``repro stats`` subcommand and tests read.  Includes the
        kernel-side bounded memos (composed prefixes, satisfying ids)
        when the system has been compiled; before compilation they
        report empty at their configured capacities."""
        if self._compiled is not None:
            kernel_stats = self._compiled.cache_stats()
        else:
            kernel_stats = {
                "composed": {"size": 0, "capacity": COMPOSED_CAP, "evictions": 0},
                "sat_ids": {"size": 0, "capacity": SAT_IDS_CAP, "evictions": 0},
            }
        store_stats = (
            self._store.stats_brief()
            if self._store is not None
            else {"attached": 0}
        )
        with self._lock:
            return {
                "closures": {"size": len(self._closures)},
                "decoded": {"size": len(self._decoded)},
                "step_flows": {"size": len(self._step_flows)},
                "history_maps": {"size": len(self._history_maps)},
                "history_tables": self._history_tables.stats(),
                "history_set": self._history_set_memo.stats(),
                "buckets": self._bucket_memo.stats(),
                "kernel_composed": kernel_stats["composed"],
                "kernel_sat_ids": kernel_stats["sat_ids"],
                "hot_closures": {"size": len(self._hotness)},
                "store": store_stats,
            }

    # -- persistent store -----------------------------------------------------

    def attach_store(
        self, store: "PersistentStore | str | os.PathLike | None"
    ) -> None:
        """Attach (or replace, or with ``None`` detach) the persistent
        memo store.  Closures already in RAM stay; the disk tier starts
        serving the next miss."""
        self._store = PersistentStore.coerce(store)
        self._store_hash = None

    @property
    def store(self) -> PersistentStore | None:
        return self._store

    def persist_memos(self) -> int:
        """Write every *complete* in-RAM memo (closures and fixed-history
        sweep tables) through to the attached persistent store, returning
        the number of rows written.

        The normal path already persists at the memoization point, but
        work computed before a store was attached — or closures adopted
        from a pool that raced a store degradation — may exist only in
        RAM.  The graceful-shutdown paths (service drain, CLI interrupt)
        call this so no completed closure is lost; writes are idempotent
        replaces, so double-persisting is safe.  Budget-tripped partials
        never enter the RAM memos, so they can never leak to disk here.
        """
        store = self._store_for()
        if store is None:
            return 0
        written = 0
        with self._lock:
            closures = list(self._closures.items())
        for (_, constraint), closure in closures:
            if isinstance(closure, CompiledClosure):
                store.save_closure(
                    self._store_hash, self._constraint_key(constraint), closure
                )
                written += 1
        for (source_set, indices, flow_key), table in self._history_tables.items():
            store.save_history_table(
                self._store_hash,
                source_set,
                indices,
                self._constraint_key(flow_key),
                table,
            )
            written += 1
        return written

    def _store_for(self) -> PersistentStore | None:
        """The store, ready to serve this engine — or ``None`` when no
        store is attached, the engine is not compiled (no canonical
        integer encoding to key by), or the store has degraded.  First
        use registers the compiled kernel and caches the system hash."""
        store = self._store
        if store is None or not self._use_compiled or store.degraded:
            return None
        if self._store_hash is None:
            self._store_hash = store.register_system(self.compiled_system().kernel)
        return store if self._store_hash is not None else None

    def _constraint_key(self, constraint: Constraint | None) -> str:
        return sat_key(self.compiled_system().sat_ids(constraint))

    def _closure_from_store(
        self,
        store: PersistentStore,
        source_set: frozenset[str],
        constraint: Constraint | None,
        constraint_name: str,
    ) -> CompiledClosure | None:
        row = store.load_closure(
            self._store_hash, source_set, self._constraint_key(constraint)
        )
        if row is None:
            return None
        kernel_path, order, parents, _touched, first_diff = row
        return CompiledClosure(
            self.compiled_system(),
            source_set,
            constraint_name,
            order,
            parents,
            kernel_path,
            first_diff=first_diff,
        )

    def hydrate_kernel(self, kernel) -> CompiledSystem:
        """Adopt precompiled tables (``PersistentStore.load_kernel`` /
        a shared-memory attach) as this engine's compiled system, so no
        operation executes at warm-up.  No-op if the engine already
        compiled; the tables are shape-checked against the system."""
        compiled = CompiledSystem(self.system, kernel=kernel)
        with self._lock:
            if self._compiled is None:
                self._compiled = compiled
        return self._compiled

    def adopt_closure(
        self,
        sources: Iterable[str],
        constraint: Constraint | None,
        order,
        parents,
        kernel_path: str = "compiled",
    ) -> CompiledClosure:
        """Install a closure computed elsewhere — a surviving memo from
        a previous system version (:mod:`repro.analysis.diff`) or a
        peer process — into the RAM memo (first writer wins) and, when a
        store is attached, onto disk under *this* system's hash."""
        source_set = self.system.space.check_names(sources)
        phi = self._resolve(constraint)
        closure = CompiledClosure(
            self.compiled_system(), source_set, phi.name, order, parents, kernel_path
        )
        with self._lock:
            closure = self._closures.setdefault((source_set, constraint), closure)
        store = self._store_for()
        if store is not None:
            store.save_closure(
                self._store_hash, self._constraint_key(constraint), closure
            )
        return closure

    # -- compilation / transition tabulation ----------------------------------

    def compiled_system(self) -> CompiledSystem:
        """The integer-kernel compilation of the system, built once (lazy).

        Compilation executes each operation exactly once per state — the
        same budget PR 1's tabulation paid — and everything afterwards is
        indexed array reads.
        """
        if self._compiled is None:
            compiled = CompiledSystem(self.system)
            with self._lock:
                if self._compiled is None:
                    self._compiled = compiled
        return self._compiled

    def transition_tables(self) -> tuple[tuple[str, Mapping[State, State]], ...]:
        """Every operation expanded into an explicit dict, once (lazy).

        Order matches ``system.operations`` so BFS expansion order — and
        therefore witness choice — is identical to the per-query BFS.  On
        a compiled engine the dicts are decoded from the successor arrays,
        so operations still execute exactly once per state overall.
        """
        if self._tables is None:
            if self._use_compiled:
                compiled = self.compiled_system()
                states = compiled.states
                tables = tuple(
                    (
                        name,
                        {
                            states[i]: states[successor[i]]
                            for i in range(compiled.kernel.n)
                        },
                    )
                    for name, successor in zip(
                        compiled.kernel.op_names, compiled.kernel.successors
                    )
                )
            else:
                tables = tuple(
                    (op.name, transition_table(self.system, op))
                    for op in self.system.operations
                )
            with self._lock:
                if self._tables is None:
                    self._tables = tables
        return self._tables

    # -- single-flight memo coordination --------------------------------------

    def _flight(self, key: object) -> threading.Lock:
        """The single-flight lock for one memo key.

        Concurrent get-or-compute for the *same* key serializes (the
        loser re-checks the memo and finds the winner's entry), while
        distinct keys still compute in parallel.  Lock objects are a few
        hundred bytes and the registry tracks the memo population, so it
        is not separately bounded.
        """
        with self._lock:
            lock = self._flights.get(key)
            if lock is None:
                lock = self._flights.setdefault(key, threading.Lock())
            return lock

    def _acquire_flight(
        self, lock: threading.Lock, meter: BudgetMeter | None = None
    ) -> None:
        """Acquire a single-flight lock, staying responsive to the
        caller's budget: a governed waiter re-checks its deadline and
        cancellation token every :data:`_FLIGHT_POLL` seconds instead of
        blocking indefinitely behind another thread's compute — a client
        timeout must cancel a *queued* query as surely as a running one.
        """
        if meter is None:
            lock.acquire()
            return
        while not lock.acquire(timeout=_FLIGHT_POLL):
            meter.check(meter.expanded, meter.discovered)

    # -- closures -------------------------------------------------------------

    def _resolve(self, constraint: Constraint | None) -> Constraint:
        if constraint is None:
            return Constraint.true(self.system.space)
        if constraint.space != self.system.space:
            raise ConstraintError(
                "constraint and system are over different spaces "
                f"({constraint.space!r} vs {self.system.space!r})"
            )
        return constraint

    def _flow_key(self, constraint: Constraint | None) -> Constraint | None:
        """The memo key for constraint-resolved caches: ``None`` for any
        constraint the whole space satisfies, the instance otherwise.

        ``operation_flows(None)`` and ``operation_flows(Constraint.true(...))``
        (or any other trivially-true instance) denote the same matrix, so
        they share one entry.  Distinct non-trivial instances keep separate
        entries — per-instance keying, like ``_closures``.
        """
        if constraint is None:
            return None
        if len(constraint.satisfying) == self.system.space.size:
            return None
        return constraint

    def _resolve_budget(
        self, budget: ExecutionBudget | None
    ) -> ExecutionBudget | None:
        """Per-call budgets override the engine default; ``None`` inherits
        it.  Pass an explicit all-``None`` :class:`ExecutionBudget` to run
        a single call ungoverned on a budgeted engine."""
        return budget if budget is not None else self.budget

    def _closure_mode(self) -> str:
        """The concrete kernel this engine's closures run on: ``scalar``
        or ``bitset``.  ``auto`` resolves by space size — bulk expansion
        only pays off once frontiers are wide, and small systems keep
        their historical ``compiled`` provenance."""
        if not self._use_compiled:
            return "scalar"
        if self._kernel_mode == "auto":
            return (
                "bitset"
                if self.system.space.size >= BITSET_AUTO_MIN_STATES
                else "scalar"
            )
        return self._kernel_mode

    def _closure(
        self,
        sources: Iterable[str],
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> PairClosure | CompiledClosure:
        """The memoized closure for ``(A, phi)`` in its native form:
        :class:`~repro.core.compiled.CompiledClosure` on a compiled
        engine, :class:`PairClosure` on the PR-1 object path.  Both
        expose the same query surface (``first_differing``,
        ``first_differing_at_all``, ``witness_path``).

        Under a budget the BFS is metered; a trip raises
        :class:`~repro.core.budget.BudgetExceededError` and **nothing is
        memoized** — the cache only ever holds complete closures, so a
        budget-truncated run can never corrupt later unbudgeted answers.
        """
        return self._closure_info(sources, constraint, budget)[0]

    def _closure_info(
        self,
        sources: Iterable[str],
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> tuple[PairClosure | CompiledClosure, bool, str]:
        """:meth:`_closure` plus which memo tier served it — the memo
        outcome and store outcome feed the
        :class:`~repro.obs.provenance.Provenance` record every public
        answer carries.  Tiers: RAM memo -> persistent store -> compute
        (computing persists the fresh closure when a store is attached;
        budget trips raise before either memo point, so partial results
        never enter RAM or disk)."""
        source_set = self.system.space.check_names(sources)
        phi = self._resolve(constraint)
        key = (source_set, constraint)
        obs.count("engine.closure.requests")
        with self._lock:
            # Hotness counts *requests* (hit or miss): the ranking that
            # drives prewarm_hot and warm ordering reflects demand.
            self._hotness[key] = self._hotness.get(key, 0) + 1
            cached = self._closures.get(key)
        if cached is not None:
            obs.count("engine.closure.memo_hit")
            return cached, True, "ram" if self._store is not None else "off"
        budget = self._resolve_budget(budget)
        label = f"closure A={sorted(source_set)} phi={phi.name}"
        meter = budget.start(label) if budget is not None else None
        flight = self._flight(("closure", key))
        self._acquire_flight(flight, meter)
        try:
            with self._lock:
                cached = self._closures.get(key)
            if cached is not None:
                # Another thread computed it while we queued.
                obs.count("engine.closure.memo_hit")
                return cached, True, "ram" if self._store is not None else "off"
            obs.count("engine.closure.memo_miss")
            store = self._store_for()
            if store is not None:
                loaded = self._closure_from_store(
                    store, source_set, constraint, phi.name
                )
                if loaded is not None:
                    with self._lock:
                        return self._closures.setdefault(key, loaded), True, "hit"
            started = time.perf_counter()
            try:
                with obs.span(
                    "engine.closure",
                    sources=",".join(sorted(source_set)),
                    constraint=phi.name,
                ):
                    if self._use_compiled:
                        closure: PairClosure | CompiledClosure = (
                            self.compiled_system().closure(
                                source_set,
                                constraint,
                                phi.name,
                                meter,
                                self._closure_mode(),
                            )
                        )
                    else:
                        closure = self._compute_closure(source_set, phi, meter)
            except BudgetExceededError as exc:
                self.execution_log.record(
                    ExecutionReport(
                        label=label,
                        executor="serial",
                        expansions=exc.partial.expanded,
                        elapsed=exc.partial.elapsed,
                        completed=False,
                        partial=exc.partial,
                    )
                )
                raise
            self.execution_log.record(
                ExecutionReport(
                    label=label,
                    executor="serial",
                    expansions=len(closure),
                    elapsed=time.perf_counter() - started,
                )
            )
            obs.gauge_max("engine.closure.pairs", len(closure))
            if store is not None and isinstance(closure, CompiledClosure):
                store.save_closure(
                    self._store_hash, self._constraint_key(constraint), closure
                )
            with self._lock:
                return (
                    self._closures.setdefault(key, closure),
                    False,
                    "miss" if store is not None else "off",
                )
        finally:
            flight.release()

    def pair_closure(
        self,
        sources: Iterable[str],
        constraint: Constraint | None = None,
    ) -> PairClosure:
        """The full reachable pair set for ``(A, phi)`` as ``State``
        pairs, memoized.  On a compiled engine this *decodes* the integer
        closure (canonical pairs) at the API boundary; exact dependency
        queries never pay this cost — use :meth:`depends_ever` and
        friends for those."""
        closure = self._closure(sources, constraint)
        if isinstance(closure, PairClosure):
            return closure
        key = (closure.sources, constraint)
        with self._lock:
            decoded = self._decoded.get(key)
        if decoded is not None:
            return decoded
        kernel = closure.compiled.kernel
        states = closure.compiled.states
        n = kernel.n
        n_ops = len(kernel.op_names) or 1
        pairs: list[Pair] = []
        parents: dict[Pair, tuple[Pair, str] | None] = {}
        for code in closure.order:
            i, j = divmod(code, n)
            pair = (states[i], states[j])
            pairs.append(pair)
            packed = closure.parents[code]
            if packed < 0:
                parents[pair] = None
            else:
                parent_code, d = divmod(packed, n_ops)
                pi, pj = divmod(parent_code, n)
                parents[pair] = ((states[pi], states[pj]), kernel.op_names[d])
        decoded = PairClosure(
            closure.sources, closure.constraint_name, tuple(pairs), parents
        )
        with self._lock:
            return self._decoded.setdefault(key, decoded)

    def _compute_closure(
        self,
        sources: frozenset[str],
        phi: Constraint,
        meter: BudgetMeter | None = None,
    ) -> PairClosure:
        """The PR-1 object-path BFS over ordered ``State`` pairs — kept as
        the reference implementation for ``compiled=False`` engines.
        Budget checks mirror the compiled kernel: once after seeding,
        then every ``meter.interval`` expansions."""
        from collections import deque

        tables = self.transition_tables()
        parents: dict[Pair, tuple[Pair, str] | None] = {}
        queue: deque[Pair] = deque()
        # Def 2-8 initial pairs: phi-states equal except at the source set,
        # generated unordered-deduplicated in enumeration order (identical
        # to the per-query BFS so shortest witnesses match).
        buckets: dict[tuple, list[State]] = {}
        for state in phi.states():
            buckets.setdefault(state.restrict_away(sources), []).append(state)
        for bucket in buckets.values():
            for i, s1 in enumerate(bucket):
                for s2 in bucket[i + 1 :]:
                    pair = (s1, s2)
                    if pair not in parents:
                        parents[pair] = None
                        queue.append(pair)
        if meter is not None:
            meter.check(0, len(parents), len(queue))
        next_check = meter.interval if meter is not None else 0
        # The compiled and object paths share the BFS counter names —
        # "kernel" here means "the decision kernel", whichever loop runs.
        traced = obs.is_enabled()
        max_frontier = len(queue) if traced else 0
        order: list[Pair] = []
        while queue:
            if traced and len(queue) > max_frontier:
                max_frontier = len(queue)
            if meter is not None and len(order) >= next_check:
                meter.check(len(order), len(parents), len(queue))
                next_check = len(order) + meter.interval
            pair = queue.popleft()
            order.append(pair)
            s1, s2 = pair
            for op_name, table in tables:
                successor = (table[s1], table[s2])
                if successor not in parents:
                    parents[successor] = (pair, op_name)
                    queue.append(successor)
        if traced:
            obs.count("kernel.pair_expansions", len(order))
            obs.count("kernel.pairs_discovered", len(parents))
            obs.gauge_max("kernel.frontier_high_water", max_frontier)
        return PairClosure(sources, phi.name, tuple(order), parents)

    # -- single queries -------------------------------------------------------

    def _witness(
        self,
        closure: PairClosure | CompiledClosure,
        pair,
        targets: frozenset[str],
    ) -> Witness:
        op_names, initial = closure.witness_path(pair)
        history = History(self.system.operation(name) for name in op_names)
        return Witness(
            sources=closure.sources,
            targets=targets,
            history=history,
            sigma1=initial[0],
            sigma2=initial[1],
        )

    def _provenance(
        self,
        hit: bool,
        budget: ExecutionBudget | None,
        witness: Witness | None = None,
        closure_pairs: int | None = None,
        kernel: str | None = None,
        store: str = "off",
    ) -> Provenance:
        """The provenance record for one engine answer: which kernel
        decided it, whether the memo served it (and, with a persistent
        store attached, which tier — see
        :data:`~repro.obs.provenance.STORE_STATES`), and under what
        budget.  ``kernel`` overrides the engine-level default with the
        closure's own recorded path (``compiled-bitset`` vs ``compiled``)
        when the answer came from a specific closure."""
        if kernel is None:
            kernel = "compiled" if self._use_compiled else "object"
        return Provenance(
            kernel=kernel,
            memo="hit" if hit else "fresh",
            budget=(
                "governed" if self._resolve_budget(budget) is not None else "none"
            ),
            witness_length=len(witness.history) if witness is not None else None,
            closure_pairs=closure_pairs,
            store=store,
        )

    def depends_ever(
        self,
        sources: Iterable[str],
        target: str,
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> DependencyResult:
        """Exact ``A |>_phi beta`` (Def 2-7/2-11) from the shared closure,
        with a shortest witness when positive.

        Under a budget (per-call or the engine default) the closure BFS
        is governed and may raise
        :class:`~repro.core.budget.BudgetExceededError` with a partial
        result instead of answering — it never returns a wrong verdict.
        """
        self.system.space.check_names([target])
        closure, hit, store_tier = self._closure_info(sources, constraint, budget)
        targets = frozenset([target])
        kernel_path = getattr(closure, "kernel_path", None)
        pair = closure.first_differing().get(target)
        if pair is None:
            return DependencyResult(
                False,
                closure.sources,
                targets,
                closure.constraint_name,
                provenance=self._provenance(
                    hit,
                    budget,
                    closure_pairs=len(closure),
                    kernel=kernel_path,
                    store=store_tier,
                ),
            )
        witness = self._witness(closure, pair, targets)
        return DependencyResult(
            True,
            closure.sources,
            targets,
            closure.constraint_name,
            witness,
            provenance=self._provenance(
                hit,
                budget,
                witness,
                closure_pairs=len(closure),
                kernel=kernel_path,
                store=store_tier,
            ),
        )

    def depends_ever_set(
        self,
        sources: Iterable[str],
        targets: Iterable[str],
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> DependencyResult:
        """Exact ``A |>_phi B`` (Def 5-7): the earliest reachable pair
        differing at *every* object of B, from the same shared closure."""
        target_set = self.system.space.check_names(targets)
        if not target_set:
            raise ConstraintError("target set B must be non-empty")
        closure, hit, store_tier = self._closure_info(sources, constraint, budget)
        kernel_path = getattr(closure, "kernel_path", None)
        pair = closure.first_differing_at_all(target_set)
        if pair is None:
            return DependencyResult(
                False,
                closure.sources,
                target_set,
                closure.constraint_name,
                provenance=self._provenance(
                    hit,
                    budget,
                    closure_pairs=len(closure),
                    kernel=kernel_path,
                    store=store_tier,
                ),
            )
        witness = self._witness(closure, pair, target_set)
        return DependencyResult(
            True,
            closure.sources,
            target_set,
            closure.constraint_name,
            witness,
            provenance=self._provenance(
                hit,
                budget,
                witness,
                closure_pairs=len(closure),
                kernel=kernel_path,
                store=store_tier,
            ),
        )

    # -- fixed-history queries ------------------------------------------------

    def _history_indices(self, history: History | Operation) -> tuple[int, ...]:
        """Resolve a history to operation indices into the successor
        arrays.  Operations are matched by *identity* (via their name), so
        an ad-hoc composite such as ``op1.then(op2)`` — which is not one
        of the system's operations even though its pieces are — raises
        :class:`~repro.core.errors.ForeignOperationError` instead of
        silently answering for a different operation of the same name."""
        if isinstance(history, Operation):
            history = History.of(history)
        ops = self._ops
        position = self._op_position
        indices: list[int] = []
        for op in history:
            k = position.get(op.name)
            if k is None or ops[k] is not op:
                raise ForeignOperationError(op.name)
            indices.append(k)
        return tuple(indices)

    def _history_map(self, indices: tuple[int, ...]) -> Mapping[State, State]:
        """Composed transition dict for the object path: ``map[s] = H(s)``,
        memoized per op-index tuple (the ``compiled=False`` analogue of
        :meth:`CompiledSystem.history_array`)."""
        cached = self._history_maps.get(indices)
        if cached is not None:
            return cached
        tables = self.transition_tables()
        composed: Mapping[State, State] = {
            state: state for state in self.system.space.states()
        }
        for k in indices:
            table = tables[k][1]
            composed = {s: table[f] for s, f in composed.items()}
        with self._lock:
            return self._history_maps.setdefault(indices, composed)

    def _history_table(
        self,
        source_set: frozenset[str],
        indices: tuple[int, ...],
        constraint: Constraint | None,
        budget: ExecutionBudget | None = None,
    ) -> Mapping[str, tuple[int, int] | Pair]:
        """For one ``(A, H, phi)``: the first witness pair per target.

        One sweep over the Def 1-1 buckets of sat(phi) answers **all**
        targets at once: within a bucket every state's composed final is
        compared to the first member's, and the first member whose final
        differs at a still-unassigned target claims it.  Compare-to-first
        is complete for single targets — if two bucket members differ at
        ``t`` after H, at least one of them differs from the bucket's
        first member at ``t`` — and scanning buckets/members in
        enumeration order makes the recorded pair *identical* to the
        seed checker's.  Memoized per ``(A, op-indices, flow-key)``.

        Like the closures, a budget governs the sweep (checked once per
        bucket) and a trip memoizes nothing.
        """
        return self._history_table_info(source_set, indices, constraint, budget)[0]

    def _history_table_info(
        self,
        source_set: frozenset[str],
        indices: tuple[int, ...],
        constraint: Constraint | None,
        budget: ExecutionBudget | None = None,
    ) -> tuple[Mapping[str, tuple[int, int] | Pair], bool, str]:
        """:meth:`_history_table` plus which memo tier served it
        (RAM LRU -> persistent store -> sweep, like the closures)."""
        key = (source_set, indices, self._flow_key(constraint))
        cached = self._history_tables.get(key)
        if cached is not None:
            obs.count("engine.history_table.memo_hit")
            return cached, True, "ram" if self._store is not None else "off"
        budget = self._resolve_budget(budget)
        meter = (
            budget.start(f"history sweep A={sorted(source_set)} |H|={len(indices)}")
            if budget is not None
            else None
        )
        flight = self._flight(("history", key))
        self._acquire_flight(flight, meter)
        try:
            cached = self._history_tables.get(key)
            if cached is not None:
                obs.count("engine.history_table.memo_hit")
                return cached, True, "ram" if self._store is not None else "off"
            obs.count("engine.history_table.memo_miss")
            store = self._store_for()
            if store is not None:
                loaded = store.load_history_table(
                    self._store_hash,
                    source_set,
                    indices,
                    self._constraint_key(constraint),
                )
                if loaded is not None:
                    return self._history_tables.put(key, loaded), True, "hit"
            try:
                with obs.span(
                    "engine.history_sweep",
                    sources=",".join(sorted(source_set)),
                    length=len(indices),
                ):
                    if self._use_compiled:
                        table = self._compiled_history_table(
                            source_set, indices, constraint, meter
                        )
                    else:
                        table = self._object_history_table(
                            source_set, indices, self._resolve(constraint), meter
                        )
            except BudgetExceededError as exc:
                self.execution_log.record(
                    ExecutionReport(
                        label=exc.partial.label,
                        executor="serial",
                        expansions=exc.partial.expanded,
                        elapsed=exc.partial.elapsed,
                        completed=False,
                        partial=exc.partial,
                    )
                )
                raise
            if store is not None and self._use_compiled:
                store.save_history_table(
                    self._store_hash,
                    source_set,
                    indices,
                    self._constraint_key(constraint),
                    table,
                )
            return (
                self._history_tables.put(key, table),
                False,
                "miss" if store is not None else "off",
            )
        finally:
            flight.release()

    def _buckets(
        self,
        source_indices: tuple[int, ...],
        constraint: Constraint | None,
    ) -> list[list[int]]:
        """The Def 1-1 bucket partition for (source columns, sat(phi))
        as a list of id lists — the store-backed form of
        ``kernel.buckets(...).values()`` (first-seen order preserved).
        Every compiled bucket sweep (history tables, set scans, operation
        flows) goes through here, so a warm process skips the O(n)
        partition pass too.  Served RAM-first (a bounded LRU) with
        single-flight get-or-compute, like the closures — the partitions
        used to be recomputed (or re-fetched from disk) per sweep."""
        compiled = self.compiled_system()
        memo_key = (source_indices, self._flow_key(constraint))
        cached = self._bucket_memo.get(memo_key)
        if cached is not None:
            return cached
        flight = self._flight(("buckets", memo_key))
        self._acquire_flight(flight)
        try:
            cached = self._bucket_memo.get(memo_key)
            if cached is not None:
                return cached
            store = self._store_for()
            if store is not None:
                key = self._constraint_key(constraint)
                loaded = store.load_buckets(self._store_hash, source_indices, key)
                if loaded is not None:
                    return self._bucket_memo.put(memo_key, loaded)
            buckets = list(
                compiled.kernel.buckets(
                    source_indices, compiled.sat_ids(constraint)
                ).values()
            )
            if store is not None:
                store.save_buckets(self._store_hash, source_indices, key, buckets)
            return self._bucket_memo.put(memo_key, buckets)
        finally:
            flight.release()

    def history_indices(self, history: History | Operation) -> tuple[int, ...]:
        """Resolve a history to indices into the compiled successor
        arrays (public form of the internal resolver the fixed-history
        provers use).  Raises
        :class:`~repro.core.errors.ForeignOperationError` for operations
        that are not the system's own — callers such as the compiled
        quantitative layer catch it and fall back to the object path."""
        return self._history_indices(history)

    def def11_buckets(
        self,
        sources: Iterable[str],
        constraint: Constraint | None = None,
    ) -> list[list[int]]:
        """The Def 1-1 bucket partition of sat(phi) for a source set, as
        id lists in first-seen order — store-backed like every other
        compiled bucket sweep.  Conditioning on "everything outside A
        held at z" *is* membership in one of these buckets, which is how
        the quantitative layer reads equivocation off them."""
        source_set = self.system.space.check_names(sources)
        compiled = self.compiled_system()
        return self._buckets(compiled.source_indices(source_set), constraint)

    def composed_history_array(self, indices: Iterable[int]) -> array:
        """The composed successor array for a fixed history, served from
        the same three tiers as the closures: RAM LRU -> persistent
        store -> index-gather composition (then written back to both)."""
        indices = tuple(indices)
        compiled = self.compiled_system()
        cached = compiled.cached_history_array(indices)
        if cached is not None:
            obs.count("kernel.history_compose.memo_hit")
            return cached
        flight = self._flight(("composed", indices))
        self._acquire_flight(flight)
        try:
            cached = compiled.cached_history_array(indices)
            if cached is not None:
                obs.count("kernel.history_compose.memo_hit")
                return cached
            store = self._store_for()
            if store is not None and indices:
                loaded = store.load_composed(
                    self._store_hash, indices, compiled.kernel.n
                )
                if loaded is not None:
                    return compiled.adopt_history_array(indices, loaded)
            arr = compiled.history_array(indices)
            if store is not None and indices:
                store.save_composed(self._store_hash, indices, arr)
            return arr
        finally:
            flight.release()

    def _compiled_history_table(
        self,
        source_set: frozenset[str],
        indices: tuple[int, ...],
        constraint: Constraint | None,
        meter: BudgetMeter | None = None,
    ) -> dict[str, tuple[int, int]]:
        compiled = self.compiled_system()
        kernel = compiled.kernel
        comp = compiled.history_array(indices)
        names = kernel.names
        columns = kernel.columns
        n_names = len(names)
        first: dict[str, tuple[int, int]] = {}
        scanned = 0
        if meter is not None:
            meter.check(0, 0)
        for bucket in self._buckets(compiled.source_indices(source_set), constraint):
            if meter is not None:
                meter.check(scanned, scanned)
            scanned += len(bucket)
            if len(bucket) < 2:
                continue
            i0 = bucket[0]
            f0 = comp[i0]
            for i in bucket[1:]:
                fi = comp[i]
                if fi == f0:
                    continue
                for name, column in zip(names, columns):
                    if name not in first and column[f0] != column[fi]:
                        first[name] = (i0, i)
            if len(first) == n_names:
                break
        return first

    def _object_history_table(
        self,
        source_set: frozenset[str],
        indices: tuple[int, ...],
        phi: Constraint,
        meter: BudgetMeter | None = None,
    ) -> dict[str, Pair]:
        """The ``compiled=False`` reference: same sweep over ``State``
        buckets in enumeration order."""
        comp = self._history_map(indices)
        n_names = len(self.system.space.names)
        first: dict[str, Pair] = {}
        buckets: dict[tuple, list[State]] = {}
        for state in phi.states():
            buckets.setdefault(state.restrict_away(source_set), []).append(state)
        scanned = 0
        if meter is not None:
            meter.check(0, 0)
        for bucket in buckets.values():
            if meter is not None:
                meter.check(scanned, scanned)
            scanned += len(bucket)
            if len(bucket) < 2:
                continue
            s0 = bucket[0]
            f0 = comp[s0]
            for s in bucket[1:]:
                fs = comp[s]
                if fs == f0:
                    continue
                for name in f0.differs_at(fs):
                    if name not in first:
                        first[name] = (s0, s)
            if len(first) == n_names:
                break
        return first

    def _decode_history_pair(self, pair: tuple[int, int] | Pair) -> Pair:
        if isinstance(pair[0], int):
            states = self.compiled_system().states
            return (states[pair[0]], states[pair[1]])
        return pair  # type: ignore[return-value]

    def depends_history(
        self,
        sources: Iterable[str],
        target: str,
        history: History | Operation,
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> DependencyResult:
        """Exact ``A |>_phi^H beta`` for a *fixed* history (Def 2-10).

        The first query for a given ``(A, H, phi)`` pays one sweep over
        the Def 1-1 buckets of sat(phi) against the composed successor
        array of H; every further target is a dict lookup.  Witnesses are
        the same state pairs the seed checker returns.

        Raises :class:`~repro.core.errors.ForeignOperationError` when the
        history contains operations that are not the system's own (see
        :func:`repro.core.dependency.transmits` for the falling-back
        wrapper).
        """
        if isinstance(history, Operation):
            history = History.of(history)
        source_set = self.system.space.check_names(sources)
        self.system.space.check_names([target])
        phi = self._resolve(constraint)
        indices = self._history_indices(history)
        table, hit, store_tier = self._history_table_info(
            source_set, indices, constraint, budget
        )
        targets = frozenset([target])
        pair = table.get(target)
        if pair is None:
            return DependencyResult(
                False,
                source_set,
                targets,
                phi.name,
                provenance=self._provenance(hit, budget, store=store_tier),
            )
        sigma1, sigma2 = self._decode_history_pair(pair)
        witness = Witness(
            sources=source_set,
            targets=targets,
            history=history,
            sigma1=sigma1,
            sigma2=sigma2,
        )
        return DependencyResult(
            True,
            source_set,
            targets,
            phi.name,
            witness,
            provenance=self._provenance(hit, budget, witness, store=store_tier),
        )

    def depends_history_set(
        self,
        sources: Iterable[str],
        targets: Iterable[str],
        history: History | Operation,
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> DependencyResult:
        """Exact ``A |>_phi^H B`` for a *set* target (Def 5-6): the two
        finals must differ at **every** object of B simultaneously.

        The single-target table prunes first (Theorem 5-3's forward
        direction: if some member of B is never distinguished by H, no
        pair differs at all of B); only then does the quadratic in-bucket
        pair scan run, over composed finals — each state's final is
        evaluated once, not once per target.  Memoized per
        ``(A, op-indices, flow-key, B)``.
        """
        if isinstance(history, Operation):
            history = History.of(history)
        source_set = self.system.space.check_names(sources)
        target_set = self.system.space.check_names(targets)
        if not target_set:
            raise ConstraintError("target set B must be non-empty")
        phi = self._resolve(constraint)
        indices = self._history_indices(history)
        key = (source_set, indices, self._flow_key(constraint), target_set)
        pair = self._history_set_memo.get(key, _UNCOMPUTED)
        hit = pair is not _UNCOMPUTED
        if hit:
            obs.count("engine.history_set.memo_hit")
        else:
            flight = self._flight(("history_set", key))
            self._acquire_flight(flight)
            try:
                pair = self._history_set_memo.get(key, _UNCOMPUTED)
                if pair is not _UNCOMPUTED:
                    hit = True
                    obs.count("engine.history_set.memo_hit")
                else:
                    obs.count("engine.history_set.memo_miss")
                    with obs.span(
                        "engine.history_set",
                        sources=",".join(sorted(source_set)),
                        targets=",".join(sorted(target_set)),
                        length=len(indices),
                    ):
                        table = self._history_table(
                            source_set, indices, constraint, budget
                        )
                        if not all(t in table for t in target_set):
                            pair = None
                        elif self._use_compiled:
                            pair = self._compiled_history_set_pair(
                                source_set, indices, sorted(target_set), constraint
                            )
                        else:
                            pair = self._object_history_set_pair(
                                source_set, indices, sorted(target_set), phi
                            )
                    pair = self._history_set_memo.put(key, pair)
            finally:
                flight.release()
        if pair is None:
            return DependencyResult(
                False,
                source_set,
                target_set,
                phi.name,
                provenance=self._provenance(hit, budget),
            )
        sigma1, sigma2 = self._decode_history_pair(pair)
        witness = Witness(
            sources=source_set,
            targets=target_set,
            history=history,
            sigma1=sigma1,
            sigma2=sigma2,
        )
        return DependencyResult(
            True,
            source_set,
            target_set,
            phi.name,
            witness,
            provenance=self._provenance(hit, budget, witness),
        )

    def _compiled_history_set_pair(
        self,
        source_set: frozenset[str],
        indices: tuple[int, ...],
        target_list: list[str],
        constraint: Constraint | None,
    ) -> tuple[int, int] | None:
        compiled = self.compiled_system()
        kernel = compiled.kernel
        comp = compiled.history_array(indices)
        column_of = dict(zip(kernel.names, kernel.columns))
        cols = [column_of[t] for t in target_list]
        for bucket in self._buckets(compiled.source_indices(source_set), constraint):
            m = len(bucket)
            if m < 2:
                continue
            finals = [comp[i] for i in bucket]
            for a in range(m - 1):
                fa = finals[a]
                for b in range(a + 1, m):
                    fb = finals[b]
                    for column in cols:
                        if column[fa] == column[fb]:
                            break
                    else:
                        return (bucket[a], bucket[b])
        return None

    def _object_history_set_pair(
        self,
        source_set: frozenset[str],
        indices: tuple[int, ...],
        target_list: list[str],
        phi: Constraint,
    ) -> Pair | None:
        comp = self._history_map(indices)
        buckets: dict[tuple, list[State]] = {}
        for state in phi.states():
            buckets.setdefault(state.restrict_away(source_set), []).append(state)
        for bucket in buckets.values():
            m = len(bucket)
            if m < 2:
                continue
            finals = [comp[s] for s in bucket]
            for a in range(m - 1):
                fa = finals[a]
                for b in range(a + 1, m):
                    fb = finals[b]
                    if all(fa[t] != fb[t] for t in target_list):
                        return (bucket[a], bucket[b])
        return None

    # -- batched queries ------------------------------------------------------

    def _source_family(
        self, sources: Iterable[frozenset[str]] | None
    ) -> list[frozenset[str]]:
        if sources is None:
            return [frozenset([n]) for n in self.system.space.names]
        return [frozenset(a) for a in sources]

    def _warm(
        self,
        family: list[frozenset[str]],
        constraint: Constraint | None,
        max_workers: int | None,
        executor: str = "process",
        budget: ExecutionBudget | None = None,
    ) -> None:
        """Compute the independent per-source closures, optionally fanned
        out across a process pool (each closure is an isolated BFS; the
        memo dict is the only shared state and is lock-protected).

        The compiled hot loop is pure int/array Python, so threads
        serialize on the GIL; ``executor="process"`` (the default) ships
        the picklable :class:`~repro.core.compiled.CompiledKernel` once
        per worker instead and scales with cores.  ``executor="thread"``
        keeps the PR-1 thread pool, which is also the fallback whenever
        the engine is not compiled or the platform cannot spawn processes.

        **Fault tolerance.**  The fan-out is a degradation ladder::

            process pool  --(worker death, retries exhausted)-->  threads
            threads       --(task failure)------------------->  serial

        A worker killed mid-``map`` (``BrokenProcessPool``) loses only
        the tasks not yet yielded: completed closures are memoized as
        they stream back, so no finished work is ever recomputed or lost.
        Lost tasks are retried on a fresh pool with capped exponential
        backoff (:data:`_POOL_RETRIES` pools, then degrade).  Budget
        trips (:class:`~repro.core.budget.BudgetExceededError`) are *not*
        retried — they are a verdict about the query, not the executor —
        and propagate to the caller.  Every warm records an
        :class:`~repro.core.budget.ExecutionReport` (retries,
        degradations, final executor) on :attr:`execution_log`.
        """
        budget = self._resolve_budget(budget)
        # Dedupe preserving order (a source family with repeats must not
        # run the same BFS twice) and read the memo under the lock — a
        # concurrent warm may be filling it.
        unique = list(dict.fromkeys(family))
        with self._lock:
            pending = [a for a in unique if (a, constraint) not in self._closures]
            hotness = {
                a: self._hotness.get((a, constraint), 0) for a in pending
            }
        if not pending:
            return
        # Disk tier before any fan-out: a warm store turns the whole
        # batch into row fetches — no pool, no BFS.
        store = self._store_for()
        if store is not None:
            phi_name = self._resolve(constraint).name
            still_pending = []
            for a in pending:
                loaded = self._closure_from_store(store, a, constraint, phi_name)
                if loaded is None:
                    still_pending.append(a)
                else:
                    with self._lock:
                        self._closures.setdefault((a, constraint), loaded)
            pending = still_pending
        if not pending:
            return
        # Hottest first: under a budget (or a mid-warm failure) the
        # closures most likely to be asked for again are the ones that
        # made it into the memo.  The sort is stable, so untouched
        # sources keep their family order.
        pending.sort(key=lambda a: -hotness[a])
        total = len(pending)
        started = time.perf_counter()
        retries = 0
        degradations: list[str] = []
        path = "serial"
        fanned = max_workers is not None and len(pending) > 1
        try:
            with obs.span("engine.warm", pending=total, executor=executor):
                if fanned and self._use_compiled and executor == "process":
                    path = "process"
                    retries, pending = self._warm_processes(
                        pending, constraint, max_workers, budget
                    )
                    if pending:
                        degradations.append("process->thread")
                if pending and fanned:
                    path = "thread"
                    pending = self._warm_threads(
                        pending, constraint, max_workers, budget
                    )
                    if pending:
                        degradations.append("thread->serial")
                        path = "serial"
                if pending:
                    for k, a in enumerate(pending):
                        faults.inject("task", k)
                        self._closure(a, constraint, budget)
        finally:
            with self._lock:
                completed = all(
                    (a, constraint) in self._closures for a in unique
                )
            self.execution_log.record(
                ExecutionReport(
                    label=f"warm {total} closures "
                    f"phi={self._resolve(constraint).name}",
                    executor=path,
                    retries=retries,
                    degradations=tuple(degradations),
                    elapsed=time.perf_counter() - started,
                    completed=completed,
                )
            )

    def _warm_processes(
        self,
        pending: list[frozenset[str]],
        constraint: Constraint | None,
        max_workers: int,
        budget: ExecutionBudget | None = None,
    ) -> tuple[int, list[frozenset[str]]]:
        """Fan the pending ``(A, phi)`` closures across a process pool,
        surviving worker death.

        Workers receive the integer kernel (phi's satisfying ids and the
        budget limits) once via the pool initializer; each task is a
        ``(index, source column indices)`` tuple and returns the raw
        ``(order, parents)`` integer closure, which the parent wraps and
        memoizes **as results stream back** — a pool that breaks mid-map
        therefore loses only unyielded tasks.  Constraints and operations
        are lambdas and never cross the process boundary.

        Returns ``(retries, remaining)``: how many fresh pools were spun
        up after failures, and the sources still uncomputed when the
        retry budget ran out (empty on success).  Pool-level failures are
        *contained* here; only budget trips propagate.

        The kernel's flat tables travel through a shared-memory arena
        (:class:`~repro.core.shm.KernelArena`) when the platform allows:
        workers attach ``memoryview`` casts over one copy of the pages
        instead of unpickling per-process duplicates.  Arena creation
        failing (no POSIX shm) silently falls back to the pickled kernel
        — counted on ``pool.shm.fallbacks``.
        """
        phi = self._resolve(constraint)
        compiled = self.compiled_system()
        for sources in pending:
            self.system.space.check_names(sources)
        store = self._store_for()
        store_key = self._constraint_key(constraint) if store is not None else None
        sat_ids = compiled.sat_ids(constraint)
        limits = budget.limits() if budget is not None and budget.bounded else None
        mode = self._closure_mode()
        arena: KernelArena | None = None
        try:
            arena = KernelArena.create(compiled.kernel)
            obs.count("pool.shm.arenas")
            obs.gauge_max("pool.shm.bytes", arena.size)
            payload = arena.handle()
        except Exception:
            obs.count("pool.shm.fallbacks")
            payload = compiled.kernel
        try:
            remaining = list(pending)
            retries = 0
            delay = _RETRY_BASE_DELAY
            while remaining:
                tasks = [
                    (k, compiled.source_indices(a)) for k, a in enumerate(remaining)
                ]
                workers = min(max_workers, len(tasks))
                # chunksize=1 (the map default) pays one IPC round-trip per
                # closure; batch tiny tasks so each worker gets ~4 chunks.
                chunksize = max(1, len(tasks) // (workers * 4))
                done = 0
                try:
                    pool = ProcessPoolExecutor(
                        max_workers=workers,
                        initializer=_worker_init,
                        initargs=(payload, sat_ids, limits, obs.is_enabled(), mode),
                    )
                except OSError:
                    # No usable process pool on this platform (sandboxed
                    # semaphores, fork restrictions, ...): nothing to retry.
                    return retries, remaining
                kernel_path = "compiled-bitset" if mode == "bitset" else "compiled"
                token = budget.token if budget is not None else None
                try:
                    for order, parents, batch in pool.map(
                        _worker_closure, tasks, chunksize=chunksize
                    ):
                        obs.absorb_batch(batch)
                        source_set = frozenset(remaining[done])
                        closure = CompiledClosure(
                            compiled,
                            source_set,
                            phi.name,
                            order,
                            parents,
                            kernel_path,
                        )
                        with self._lock:
                            self._closures.setdefault(
                                (source_set, constraint), closure
                            )
                        if store is not None:
                            store.save_closure(
                                self._store_hash, store_key, closure
                            )
                        done += 1
                        # Tokens do not cross the process boundary, so a
                        # cooperative cancellation (client timeout, SIGINT)
                        # is honoured here, between streamed results: the
                        # closures already yielded stay memoized and the
                        # unfinished tasks are abandoned, not awaited.
                        if token is not None and token.cancelled:
                            raise BudgetExceededError(
                                PartialResult(
                                    label=f"warm fan-out phi={phi.name}",
                                    reason="cancelled",
                                    expanded=done,
                                    discovered=done,
                                    frontier=len(remaining) - done,
                                    elapsed=0.0,
                                )
                            )
                except BudgetExceededError:
                    # A verdict about the query (worker budget trip) or a
                    # cooperative cancel: drop the queued tasks instead of
                    # waiting the whole map out, then propagate.
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                except _POOL_FAILURES:
                    # Results stream back in task order, so the first `done`
                    # sources are memoized; only the rest need a fresh pool.
                    pool.shutdown(wait=False, cancel_futures=True)
                    remaining = remaining[done:]
                    if retries >= _POOL_RETRIES:
                        return retries, remaining
                    retries += 1
                    time.sleep(delay)
                    delay = min(delay * 2, _RETRY_MAX_DELAY)
                    continue
                else:
                    pool.shutdown()
                remaining = []
            return retries, remaining
        finally:
            if arena is not None:
                arena.destroy()

    def _warm_threads(
        self,
        pending: list[frozenset[str]],
        constraint: Constraint | None,
        max_workers: int,
        budget: ExecutionBudget | None = None,
    ) -> list[frozenset[str]]:
        """The thread rung of the ladder: fan closures across a thread
        pool, returning the sources whose tasks failed (for the serial
        rung).  Budget trips propagate; any other per-task failure is
        contained — completed closures are already memoized by
        :meth:`_closure`."""
        # Warm the shared tables once, not per thread.
        if self._use_compiled:
            self.compiled_system()
        else:
            self.transition_tables()

        def run(task: tuple[int, frozenset[str]]) -> None:
            k, a = task
            faults.inject("task", k)
            self._closure(a, constraint, budget)

        failed: list[frozenset[str]] = []
        budget_trip: BudgetExceededError | None = None
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            # copy_context(): thread-pool tasks inherit the caller's
            # contextvars (trace id, span parent), so fan-out closures
            # stay correlated with the request that triggered them.
            futures = [
                (
                    a,
                    pool.submit(
                        contextvars.copy_context().run, run, (k, a)
                    ),
                )
                for k, a in enumerate(pending)
            ]
            for a, future in futures:
                try:
                    future.result()
                except BudgetExceededError as exc:
                    budget_trip = exc
                except Exception:
                    failed.append(a)
        if budget_trip is not None:
            raise budget_trip
        return failed

    def closure(
        self,
        constraint: Constraint | None = None,
        sources: Iterable[frozenset[str]] | None = None,
        max_workers: int | None = None,
        executor: str = "process",
        budget: ExecutionBudget | None = None,
    ) -> dict[tuple[frozenset[str], str], DependencyResult]:
        """All exact dependencies for a family of source sets (default:
        singletons) against every target — the Worth raw data (section
        3.6) — from one closure per source set.  Under a budget, the
        first per-source closure to trip raises
        :class:`~repro.core.budget.BudgetExceededError`; closures already
        completed stay memoized, so a caller can catch, degrade, and
        still answer the finished rows for free."""
        family = self._source_family(sources)
        self._warm(family, constraint, max_workers, executor, budget)
        out: dict[tuple[frozenset[str], str], DependencyResult] = {}
        for source in family:
            for target in self.system.space.names:
                out[(source, target)] = self.depends_ever(
                    source, target, constraint, budget
                )
        return out

    def matrix(
        self,
        constraint: Constraint | None = None,
        max_workers: int | None = None,
        executor: str = "process",
        budget: ExecutionBudget | None = None,
    ) -> dict[str, dict[str, bool]]:
        """``matrix[x][y]`` iff ``x |>_phi y`` over some history (exact),
        one BFS per row."""
        names = self.system.space.names
        self._warm(
            [frozenset([n]) for n in names],
            constraint,
            max_workers,
            executor,
            budget,
        )
        return {
            x: {
                y: bool(
                    self.depends_ever(frozenset([x]), y, constraint, budget)
                )
                for y in names
            }
            for x in names
        }

    # -- hotness / prewarming -------------------------------------------------

    def hot_closures(
        self, k: int | None = None
    ) -> list[tuple[tuple[frozenset[str], Constraint | None], int]]:
        """The most-requested ``(A, phi)`` closure keys with their request
        counts, hottest first (ties in first-seen order — the count dict
        preserves insertion and the sort is stable).  This is the PR-5
        telemetry turned into a schedule: every :meth:`depends_ever` /
        :meth:`depends_ever_set` call counts, whether the memo served it
        or not."""
        with self._lock:
            ranked = sorted(self._hotness.items(), key=lambda kv: -kv[1])
        return ranked if k is None else ranked[:k]

    def prewarm_hot(
        self,
        k: int,
        max_workers: int | None = None,
        executor: str = "process",
        budget: ExecutionBudget | None = None,
    ) -> int:
        """Compute the closures for the ``k`` hottest ``(A, phi)`` pairs
        that are not yet memoized, fanned out like any other warm.

        Budget-tripped closures never enter the memo, so this is the
        recovery path after governed runs: lift (or keep) the budget and
        re-run exactly the demand-ranked misses.  Returns the number of
        closures that were actually pending.  Keys are grouped per
        constraint (a warm fan-out ships one ``sat(phi)`` to the pool).
        """
        with self._lock:
            missing = [
                key
                for key, _ in sorted(self._hotness.items(), key=lambda kv: -kv[1])
                if key not in self._closures
            ][:k]
        if not missing:
            return 0
        by_constraint: dict[Constraint | None, list[frozenset[str]]] = {}
        for source_set, constraint in missing:
            by_constraint.setdefault(constraint, []).append(source_set)
        obs.count("engine.prewarm.runs")
        obs.count("engine.prewarm.closures", len(missing))
        for constraint, family in by_constraint.items():
            self._warm(family, constraint, max_workers, executor, budget)
        return len(missing)

    # -- single-step flows ----------------------------------------------------

    def operation_flows(
        self,
        constraint: Constraint | None = None,
        budget: ExecutionBudget | None = None,
    ) -> Mapping[str, frozenset[tuple[str, str]]]:
        """Per-operation single-step flows: for each operation ``delta``,
        the pairs ``(x, y)`` with ``{x} |>_phi^delta y`` (Def 2-10 with the
        one-step history).

        Computed in one pass per source object — all targets of all
        operations fall out of each state pair — and memoized per
        *resolved* constraint (:meth:`_flow_key`): ``None`` and any
        trivially-true instance share one entry.  On a compiled engine
        the pass is integer column comparison over the successor arrays.
        This is what the Millen baseline, the per-operation flow graph
        and the induction provers consume.
        """
        phi = self._resolve(constraint)
        key = self._flow_key(constraint)
        with self._lock:
            cached = self._step_flows.get(key)
        if cached is not None:
            obs.count("engine.step_flows.memo_hit")
            return cached
        budget = self._resolve_budget(budget)
        meter = (
            budget.start(f"operation flows phi={phi.name}")
            if budget is not None
            else None
        )
        flight = self._flight(("flows", key))
        self._acquire_flight(flight, meter)
        try:
            with self._lock:
                cached = self._step_flows.get(key)
            if cached is not None:
                obs.count("engine.step_flows.memo_hit")
                return cached
            obs.count("engine.step_flows.memo_miss")
            try:
                with obs.span("engine.operation_flows", constraint=phi.name):
                    if self._use_compiled:
                        result = self._compiled_operation_flows(key, meter)
                    else:
                        result = self._object_operation_flows(phi, meter)
            except BudgetExceededError as exc:
                self.execution_log.record(
                    ExecutionReport(
                        label=exc.partial.label,
                        executor="serial",
                        expansions=exc.partial.expanded,
                        elapsed=exc.partial.elapsed,
                        completed=False,
                        partial=exc.partial,
                    )
                )
                raise
            with self._lock:
                return self._step_flows.setdefault(key, result)
        finally:
            flight.release()

    def _compiled_operation_flows(
        self,
        constraint: Constraint | None,
        meter: BudgetMeter | None = None,
    ) -> dict[str, frozenset[tuple[str, str]]]:
        compiled = self.compiled_system()
        kernel = compiled.kernel
        names = kernel.names
        columns = kernel.columns
        successors = kernel.successors
        op_names = kernel.op_names
        flows: dict[str, set[tuple[str, str]]] = {name: set() for name in op_names}
        scanned = 0
        if meter is not None:
            meter.check(0, 0)
        for k, x in enumerate(names):
            for bucket in self._buckets((k,), constraint):
                if meter is not None:
                    meter.check(scanned, scanned)
                m = len(bucket)
                scanned += m
                for a in range(m - 1):
                    i = bucket[a]
                    for b in range(a + 1, m):
                        j = bucket[b]
                        for op_name, successor in zip(op_names, successors):
                            si = successor[i]
                            sj = successor[j]
                            if si == sj:
                                continue
                            add = flows[op_name].add
                            for y, column in zip(names, columns):
                                if column[si] != column[sj]:
                                    add((x, y))
        return {name: frozenset(pairs) for name, pairs in flows.items()}

    def _object_operation_flows(
        self, phi: Constraint, meter: BudgetMeter | None = None
    ) -> dict[str, frozenset[tuple[str, str]]]:
        """The PR-1 object path, kept for ``compiled=False`` engines."""
        tables = self.transition_tables()
        sat_states = list(phi.states())
        flows: dict[str, set[tuple[str, str]]] = {name: set() for name, _ in tables}
        scanned = 0
        if meter is not None:
            meter.check(0, 0)
        for x in self.system.space.names:
            buckets: dict[tuple, list[State]] = {}
            only_x = frozenset([x])
            for state in sat_states:
                buckets.setdefault(state.restrict_away(only_x), []).append(state)
            for bucket in buckets.values():
                if meter is not None:
                    meter.check(scanned, scanned)
                scanned += len(bucket)
                for i, s1 in enumerate(bucket):
                    for s2 in bucket[i + 1 :]:
                        for op_name, table in tables:
                            for y in table[s1].differs_at(table[s2]):
                                flows[op_name].add((x, y))
        return {name: frozenset(pairs) for name, pairs in flows.items()}


_ENGINES: "weakref.WeakKeyDictionary[System, DependencyEngine]" = (
    weakref.WeakKeyDictionary()
)
_ENGINES_LOCK = threading.Lock()


def shared_engine(system: System) -> DependencyEngine:
    """The process-wide engine for ``system`` (one per live instance).

    Engines hold compiled tables and memoized closures; sharing one per
    system means e.g. an audit followed by a Worth computation pays for
    each ``(A, phi)`` BFS once.  The table is weakly keyed, so engines
    are reclaimed with their systems.
    """
    with _ENGINES_LOCK:
        engine = _ENGINES.get(system)
        if engine is None:
            engine = DependencyEngine(system)
            _ENGINES[system] = engine
        return engine
