"""Shared pair-graph dependency engine: one BFS per ``(A, phi)``.

The exact existential-history decision (Def 2-7/2-11) runs a BFS over the
*pair graph* — nodes are state pairs, edges apply one operation to both
components (see :mod:`repro.core.reachability` for the construction).
The crucial observation is that the **explored node set depends only on
the source set A and the constraint phi**: the target ``beta`` enters the
algorithm solely through the stopping test ``s1.beta != s2.beta``.  Every
batched analysis in the library (dependency matrices, Worth, audits, flow
graphs, the problem checkers) asks about *many* targets for the *same*
``(A, phi)``, so running an independent BFS per target redoes identical
traversals n times over.

:class:`DependencyEngine` fixes that:

1. **Compiled integer kernel** (default).  The system is compiled once by
   :class:`~repro.core.compiled.CompiledSystem`: dense state ids, one flat
   successor array per operation, per-object value columns.  The BFS then
   runs over *canonical unordered* pairs encoded as single ints — sound by
   the swap-symmetry lemma (docs/FORMALISM.md), and roughly half the
   nodes of the ordered pair graph with O(1) integer work per edge.
   ``compiled=False`` keeps the PR-1 object path (tabulated ``State``
   dicts, ordered pairs) as the in-tree reference the property tests and
   benchmarks compare against.
2. **One closure per (A, phi), memoized.**  The full reachable pair set is
   computed once — with parent pointers and in BFS (shortest-path) order —
   and cached on the engine.  :meth:`depends_ever` then answers *every*
   target ``beta`` (and every set target ``B``, Def 5-5/5-7) from that
   single closure, including shortest-witness reconstruction.  Witnesses
   decode back to :class:`~repro.core.state.State` objects only at this
   API boundary.
3. **Batched APIs with process fan-out.**  :meth:`matrix` and
   :meth:`closure` answer whole source-family × target-grid queries.  With
   ``max_workers`` they fan the independent per-source closures out across
   a :class:`~concurrent.futures.ProcessPoolExecutor` — the compiled hot
   loop is pure int/array work, which threads would serialize on the GIL —
   shipping the picklable kernel once per worker (``executor="thread"``
   restores the PR-1 thread pool; non-compiled engines always use it).

Caching semantics: an engine is bound to one immutable
:class:`~repro.core.system.System`; operations, spaces and constraints are
immutable by construction, so cache entries never invalidate.  Closures
are keyed by ``(frozenset(A), constraint-object)`` — two *distinct*
:class:`~repro.core.constraints.Constraint` instances with the same
predicate occupy separate entries (``None`` always shares one entry).
:func:`shared_engine` hands out one engine per system (weakly referenced),
which is how the thin wrappers in :mod:`repro.core.reachability` share
work across the whole library.
"""

from __future__ import annotations

import threading
import weakref
from collections.abc import Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.core.compiled import (
    CompiledClosure,
    CompiledSystem,
    _worker_closure,
    _worker_init,
)
from repro.core.constraints import Constraint
from repro.core.dependency import DependencyResult, Witness
from repro.core.errors import ConstraintError
from repro.core.state import State
from repro.core.system import History, System, transition_table

Pair = tuple[State, State]


class PairClosure:
    """The reachable pair set for one ``(A, phi)`` — target-independent.

    ``pairs`` lists every reachable pair in BFS order (so the first pair
    satisfying any stopping test yields a shortest witness); ``parents``
    maps each pair to ``(predecessor pair, operation name)``, or ``None``
    for the Def 2-8 initial pairs.

    On a compiled engine the pairs are *canonical* (unordered, decoded
    with the lower state id first); on the PR-1 object path they are the
    ordered pairs the original BFS explored.  Shortest-path structure is
    identical either way (swap-symmetry lemma, docs/FORMALISM.md).
    """

    __slots__ = ("sources", "constraint_name", "pairs", "parents", "_first_diff")

    def __init__(
        self,
        sources: frozenset[str],
        constraint_name: str,
        pairs: tuple[Pair, ...],
        parents: Mapping[Pair, tuple[Pair, str] | None],
    ) -> None:
        self.sources = sources
        self.constraint_name = constraint_name
        self.pairs = pairs
        self.parents = parents
        self._first_diff: dict[str, Pair] | None = None

    def first_differing(self) -> Mapping[str, Pair]:
        """For each object name, the earliest reachable pair differing
        there (one sweep over the BFS order, cached).

        A name absent from the mapping is one no reachable pair
        distinguishes — i.e. ``not (A |>_phi name)``.
        """
        if self._first_diff is None:
            first: dict[str, Pair] = {}
            for pair in self.pairs:
                s1, s2 = pair
                for name in s1.differs_at(s2):
                    if name not in first:
                        first[name] = pair
            self._first_diff = first
        return self._first_diff

    def first_differing_at_all(self, targets: Iterable[str]) -> Pair | None:
        """The earliest reachable pair differing at *every* object of the
        target set (Def 5-5/5-7), or ``None``."""
        first = self.first_differing()
        target_list = sorted(targets)
        # If some member of B is never distinguished, no pair differs at
        # all of B; skip the scan entirely.
        if not all(t in first for t in target_list):
            return None
        for pair in self.pairs:
            s1, s2 = pair
            if all(s1[t] != s2[t] for t in target_list):
                return pair
        return None

    def witness_path(self, pair: Pair) -> tuple[tuple[str, ...], Pair]:
        """The operation names leading from an initial pair to ``pair``,
        plus that initial pair (the witness ``sigma1, sigma2``)."""
        ops: list[str] = []
        cursor = pair
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            cursor, op_name = parent
            ops.append(op_name)
        ops.reverse()
        return tuple(ops), cursor


class DependencyEngine:
    """Answers exact existential-history dependency queries from shared,
    memoized pair-graph closures.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("a", "m", "b")
    >>> _ = b.op_assign("d1", "m", var("a")).op_assign("d2", "b", var("m"))
    >>> engine = DependencyEngine(b.build())
    >>> result = engine.depends_ever({"a"}, "b")
    >>> bool(result), len(result.witness.history)
    (True, 2)
    >>> bool(engine.depends_ever({"b"}, "a"))  # same closure, free answer
    False
    """

    def __init__(self, system: System, compiled: bool = True) -> None:
        self.system = system
        self._use_compiled = compiled
        self._compiled: CompiledSystem | None = None
        self._tables: tuple[tuple[str, Mapping[State, State]], ...] | None = None
        self._closures: dict[
            tuple[frozenset[str], Constraint | None], PairClosure | CompiledClosure
        ] = {}
        self._decoded: dict[
            tuple[frozenset[str], Constraint | None], PairClosure
        ] = {}
        self._step_flows: dict[
            Constraint | None, dict[str, frozenset[tuple[str, str]]]
        ] = {}
        self._lock = threading.Lock()

    # -- compilation / transition tabulation ----------------------------------

    def compiled_system(self) -> CompiledSystem:
        """The integer-kernel compilation of the system, built once (lazy).

        Compilation executes each operation exactly once per state — the
        same budget PR 1's tabulation paid — and everything afterwards is
        indexed array reads.
        """
        if self._compiled is None:
            compiled = CompiledSystem(self.system)
            with self._lock:
                if self._compiled is None:
                    self._compiled = compiled
        return self._compiled

    def transition_tables(self) -> tuple[tuple[str, Mapping[State, State]], ...]:
        """Every operation expanded into an explicit dict, once (lazy).

        Order matches ``system.operations`` so BFS expansion order — and
        therefore witness choice — is identical to the per-query BFS.  On
        a compiled engine the dicts are decoded from the successor arrays,
        so operations still execute exactly once per state overall.
        """
        if self._tables is None:
            if self._use_compiled:
                compiled = self.compiled_system()
                states = compiled.states
                tables = tuple(
                    (
                        name,
                        {
                            states[i]: states[successor[i]]
                            for i in range(compiled.kernel.n)
                        },
                    )
                    for name, successor in zip(
                        compiled.kernel.op_names, compiled.kernel.successors
                    )
                )
            else:
                tables = tuple(
                    (op.name, transition_table(self.system, op))
                    for op in self.system.operations
                )
            with self._lock:
                if self._tables is None:
                    self._tables = tables
        return self._tables

    # -- closures -------------------------------------------------------------

    def _resolve(self, constraint: Constraint | None) -> Constraint:
        if constraint is None:
            return Constraint.true(self.system.space)
        if constraint.space != self.system.space:
            raise ConstraintError(
                "constraint and system are over different spaces "
                f"({constraint.space!r} vs {self.system.space!r})"
            )
        return constraint

    def _closure(
        self,
        sources: Iterable[str],
        constraint: Constraint | None = None,
    ) -> PairClosure | CompiledClosure:
        """The memoized closure for ``(A, phi)`` in its native form:
        :class:`~repro.core.compiled.CompiledClosure` on a compiled
        engine, :class:`PairClosure` on the PR-1 object path.  Both
        expose the same query surface (``first_differing``,
        ``first_differing_at_all``, ``witness_path``)."""
        source_set = self.system.space.check_names(sources)
        phi = self._resolve(constraint)
        key = (source_set, constraint)
        with self._lock:
            cached = self._closures.get(key)
        if cached is not None:
            return cached
        if self._use_compiled:
            closure: PairClosure | CompiledClosure = self.compiled_system().closure(
                source_set, constraint, phi.name
            )
        else:
            closure = self._compute_closure(source_set, phi)
        with self._lock:
            return self._closures.setdefault(key, closure)

    def pair_closure(
        self,
        sources: Iterable[str],
        constraint: Constraint | None = None,
    ) -> PairClosure:
        """The full reachable pair set for ``(A, phi)`` as ``State``
        pairs, memoized.  On a compiled engine this *decodes* the integer
        closure (canonical pairs) at the API boundary; exact dependency
        queries never pay this cost — use :meth:`depends_ever` and
        friends for those."""
        closure = self._closure(sources, constraint)
        if isinstance(closure, PairClosure):
            return closure
        key = (closure.sources, constraint)
        with self._lock:
            decoded = self._decoded.get(key)
        if decoded is not None:
            return decoded
        kernel = closure.compiled.kernel
        states = closure.compiled.states
        n = kernel.n
        n_ops = len(kernel.op_names) or 1
        pairs: list[Pair] = []
        parents: dict[Pair, tuple[Pair, str] | None] = {}
        for code in closure.order:
            i, j = divmod(code, n)
            pair = (states[i], states[j])
            pairs.append(pair)
            packed = closure.parents[code]
            if packed < 0:
                parents[pair] = None
            else:
                parent_code, d = divmod(packed, n_ops)
                pi, pj = divmod(parent_code, n)
                parents[pair] = ((states[pi], states[pj]), kernel.op_names[d])
        decoded = PairClosure(
            closure.sources, closure.constraint_name, tuple(pairs), parents
        )
        with self._lock:
            return self._decoded.setdefault(key, decoded)

    def _compute_closure(
        self, sources: frozenset[str], phi: Constraint
    ) -> PairClosure:
        """The PR-1 object-path BFS over ordered ``State`` pairs — kept as
        the reference implementation for ``compiled=False`` engines."""
        from collections import deque

        tables = self.transition_tables()
        parents: dict[Pair, tuple[Pair, str] | None] = {}
        queue: deque[Pair] = deque()
        # Def 2-8 initial pairs: phi-states equal except at the source set,
        # generated unordered-deduplicated in enumeration order (identical
        # to the per-query BFS so shortest witnesses match).
        buckets: dict[tuple, list[State]] = {}
        for state in phi.states():
            buckets.setdefault(state.restrict_away(sources), []).append(state)
        for bucket in buckets.values():
            for i, s1 in enumerate(bucket):
                for s2 in bucket[i + 1 :]:
                    pair = (s1, s2)
                    if pair not in parents:
                        parents[pair] = None
                        queue.append(pair)
        order: list[Pair] = []
        while queue:
            pair = queue.popleft()
            order.append(pair)
            s1, s2 = pair
            for op_name, table in tables:
                successor = (table[s1], table[s2])
                if successor not in parents:
                    parents[successor] = (pair, op_name)
                    queue.append(successor)
        return PairClosure(sources, phi.name, tuple(order), parents)

    # -- single queries -------------------------------------------------------

    def _witness(
        self,
        closure: PairClosure | CompiledClosure,
        pair,
        targets: frozenset[str],
    ) -> Witness:
        op_names, initial = closure.witness_path(pair)
        history = History(self.system.operation(name) for name in op_names)
        return Witness(
            sources=closure.sources,
            targets=targets,
            history=history,
            sigma1=initial[0],
            sigma2=initial[1],
        )

    def depends_ever(
        self,
        sources: Iterable[str],
        target: str,
        constraint: Constraint | None = None,
    ) -> DependencyResult:
        """Exact ``A |>_phi beta`` (Def 2-7/2-11) from the shared closure,
        with a shortest witness when positive."""
        self.system.space.check_names([target])
        closure = self._closure(sources, constraint)
        targets = frozenset([target])
        pair = closure.first_differing().get(target)
        if pair is None:
            return DependencyResult(
                False, closure.sources, targets, closure.constraint_name
            )
        return DependencyResult(
            True,
            closure.sources,
            targets,
            closure.constraint_name,
            self._witness(closure, pair, targets),
        )

    def depends_ever_set(
        self,
        sources: Iterable[str],
        targets: Iterable[str],
        constraint: Constraint | None = None,
    ) -> DependencyResult:
        """Exact ``A |>_phi B`` (Def 5-7): the earliest reachable pair
        differing at *every* object of B, from the same shared closure."""
        target_set = self.system.space.check_names(targets)
        if not target_set:
            raise ConstraintError("target set B must be non-empty")
        closure = self._closure(sources, constraint)
        pair = closure.first_differing_at_all(target_set)
        if pair is None:
            return DependencyResult(
                False, closure.sources, target_set, closure.constraint_name
            )
        return DependencyResult(
            True,
            closure.sources,
            target_set,
            closure.constraint_name,
            self._witness(closure, pair, target_set),
        )

    # -- batched queries ------------------------------------------------------

    def _source_family(
        self, sources: Iterable[frozenset[str]] | None
    ) -> list[frozenset[str]]:
        if sources is None:
            return [frozenset([n]) for n in self.system.space.names]
        return [frozenset(a) for a in sources]

    def _warm(
        self,
        family: list[frozenset[str]],
        constraint: Constraint | None,
        max_workers: int | None,
        executor: str = "process",
    ) -> None:
        """Compute the independent per-source closures, optionally fanned
        out across a process pool (each closure is an isolated BFS; the
        memo dict is the only shared state and is lock-protected).

        The compiled hot loop is pure int/array Python, so threads
        serialize on the GIL; ``executor="process"`` (the default) ships
        the picklable :class:`~repro.core.compiled.CompiledKernel` once
        per worker instead and scales with cores.  ``executor="thread"``
        keeps the PR-1 thread pool, which is also the fallback whenever
        the engine is not compiled or the platform cannot spawn processes.
        """
        # Dedupe preserving order (a source family with repeats must not
        # run the same BFS twice) and read the memo under the lock — a
        # concurrent warm may be filling it.
        unique = list(dict.fromkeys(family))
        with self._lock:
            pending = [a for a in unique if (a, constraint) not in self._closures]
        if not pending:
            return
        if max_workers is not None and len(pending) > 1:
            if self._use_compiled and executor == "process":
                try:
                    self._warm_processes(pending, constraint, max_workers)
                    return
                except OSError:
                    # No usable process pool on this platform (sandboxed
                    # semaphores, fork restrictions, ...): fall through.
                    pass
            # Warm the shared tables once, not per thread.
            if self._use_compiled:
                self.compiled_system()
            else:
                self.transition_tables()
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                list(pool.map(lambda a: self._closure(a, constraint), pending))
        else:
            for a in pending:
                self._closure(a, constraint)

    def _warm_processes(
        self,
        pending: list[frozenset[str]],
        constraint: Constraint | None,
        max_workers: int,
    ) -> None:
        """Fan the pending ``(A, phi)`` closures across a process pool.

        Workers receive the integer kernel (and phi's satisfying ids)
        once via the pool initializer; each task is a tuple of source
        column indices and returns the raw ``(order, parents)`` integer
        closure, which the parent wraps and memoizes.  Constraints and
        operations are lambdas and never cross the process boundary.
        """
        phi = self._resolve(constraint)
        compiled = self.compiled_system()
        for sources in pending:
            self.system.space.check_names(sources)
        tasks = [compiled.source_indices(a) for a in pending]
        sat_ids = compiled.sat_ids(constraint)
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_worker_init,
            initargs=(compiled.kernel, sat_ids),
        ) as pool:
            results = list(pool.map(_worker_closure, tasks))
        for sources, (order, parents) in zip(pending, results):
            source_set = frozenset(sources)
            closure = CompiledClosure(
                compiled, source_set, phi.name, order, parents
            )
            with self._lock:
                self._closures.setdefault((source_set, constraint), closure)

    def closure(
        self,
        constraint: Constraint | None = None,
        sources: Iterable[frozenset[str]] | None = None,
        max_workers: int | None = None,
        executor: str = "process",
    ) -> dict[tuple[frozenset[str], str], DependencyResult]:
        """All exact dependencies for a family of source sets (default:
        singletons) against every target — the Worth raw data (section
        3.6) — from one closure per source set."""
        family = self._source_family(sources)
        self._warm(family, constraint, max_workers, executor)
        out: dict[tuple[frozenset[str], str], DependencyResult] = {}
        for source in family:
            for target in self.system.space.names:
                out[(source, target)] = self.depends_ever(source, target, constraint)
        return out

    def matrix(
        self,
        constraint: Constraint | None = None,
        max_workers: int | None = None,
        executor: str = "process",
    ) -> dict[str, dict[str, bool]]:
        """``matrix[x][y]`` iff ``x |>_phi y`` over some history (exact),
        one BFS per row."""
        names = self.system.space.names
        self._warm(
            [frozenset([n]) for n in names], constraint, max_workers, executor
        )
        return {
            x: {
                y: bool(self.depends_ever(frozenset([x]), y, constraint))
                for y in names
            }
            for x in names
        }

    # -- single-step flows ----------------------------------------------------

    def operation_flows(
        self, constraint: Constraint | None = None
    ) -> Mapping[str, frozenset[tuple[str, str]]]:
        """Per-operation single-step flows: for each operation ``delta``,
        the pairs ``(x, y)`` with ``{x} |>_phi^delta y`` (Def 2-10 with the
        one-step history).

        Computed in one pass per source object — all targets of all
        operations fall out of each state pair — and memoized per
        constraint.  On a compiled engine the pass is integer column
        comparison over the successor arrays.  This is what the Millen
        baseline and the per-operation flow graph consume.
        """
        phi = self._resolve(constraint)
        with self._lock:
            cached = self._step_flows.get(constraint)
        if cached is not None:
            return cached
        if self._use_compiled:
            result = self._compiled_operation_flows(constraint)
        else:
            result = self._object_operation_flows(phi)
        with self._lock:
            return self._step_flows.setdefault(constraint, result)

    def _compiled_operation_flows(
        self, constraint: Constraint | None
    ) -> dict[str, frozenset[tuple[str, str]]]:
        compiled = self.compiled_system()
        kernel = compiled.kernel
        sat_ids = compiled.sat_ids(constraint)
        names = kernel.names
        columns = kernel.columns
        successors = kernel.successors
        op_names = kernel.op_names
        flows: dict[str, set[tuple[str, str]]] = {name: set() for name in op_names}
        for k, x in enumerate(names):
            for bucket in kernel.buckets((k,), sat_ids).values():
                m = len(bucket)
                for a in range(m - 1):
                    i = bucket[a]
                    for b in range(a + 1, m):
                        j = bucket[b]
                        for op_name, successor in zip(op_names, successors):
                            si = successor[i]
                            sj = successor[j]
                            if si == sj:
                                continue
                            add = flows[op_name].add
                            for y, column in zip(names, columns):
                                if column[si] != column[sj]:
                                    add((x, y))
        return {name: frozenset(pairs) for name, pairs in flows.items()}

    def _object_operation_flows(
        self, phi: Constraint
    ) -> dict[str, frozenset[tuple[str, str]]]:
        """The PR-1 object path, kept for ``compiled=False`` engines."""
        tables = self.transition_tables()
        sat_states = list(phi.states())
        flows: dict[str, set[tuple[str, str]]] = {name: set() for name, _ in tables}
        for x in self.system.space.names:
            buckets: dict[tuple, list[State]] = {}
            only_x = frozenset([x])
            for state in sat_states:
                buckets.setdefault(state.restrict_away(only_x), []).append(state)
            for bucket in buckets.values():
                for i, s1 in enumerate(bucket):
                    for s2 in bucket[i + 1 :]:
                        for op_name, table in tables:
                            for y in table[s1].differs_at(table[s2]):
                                flows[op_name].add((x, y))
        return {name: frozenset(pairs) for name, pairs in flows.items()}


_ENGINES: "weakref.WeakKeyDictionary[System, DependencyEngine]" = (
    weakref.WeakKeyDictionary()
)
_ENGINES_LOCK = threading.Lock()


def shared_engine(system: System) -> DependencyEngine:
    """The process-wide engine for ``system`` (one per live instance).

    Engines hold compiled tables and memoized closures; sharing one per
    system means e.g. an audit followed by a Worth computation pays for
    each ``(A, phi)`` BFS once.  The table is weakly keyed, so engines
    are reclaimed with their systems.
    """
    with _ENGINES_LOCK:
        engine = _ENGINES.get(system)
        if engine is None:
            engine = DependencyEngine(system)
            _ENGINES[system] = engine
        return engine
