"""Execution governor: budgets, partial results and execution reports.

The exact decision procedures in this library are BFS/sweep loops over a
state space that is exponential in the number of objects (Defs 2-8…2-11):
one unlucky ``(A, phi)`` query can pin a core for minutes.  Long-running,
many-query workloads — lattice certification, covert-channel audits —
need *bounded, degradable* execution rather than all-or-nothing runs.

This module supplies the vocabulary:

- :class:`ExecutionBudget` — an immutable bundle of limits (wall-clock
  deadline, max pair-node expansions, max distinct pair nodes, a
  cooperative :class:`CancellationToken`).  ``budget.start(label)``
  produces a :class:`BudgetMeter` that the hot loops consult.
- :class:`BudgetMeter` — the per-run counter.  Hot loops call
  :meth:`BudgetMeter.check` every ``check_interval`` expansions; when a
  limit trips it raises :class:`BudgetExceededError` carrying a
  :class:`PartialResult` snapshot (states expanded, frontier size,
  elapsed time, verdict ``UNKNOWN``).
- :class:`ExecutionReport` / :class:`ExecutionLog` — per-query and
  per-engine accounting (expansions, retries, pool degradations, the
  fallback path taken), surfaced through the CLI and the audit report.

Soundness of ``UNKNOWN``: a budget can only *truncate* the exploration of
the pair graph, i.e. under-approximate the reachable pair set.  A ``YES``
verdict needs one reachable differing pair — any pair found before the
budget tripped is still a genuine witness — and a ``NO`` verdict needs
the *complete* closure.  So a budgeted run either returns the same
verdict an unbudgeted run would, or raises with ``UNKNOWN``; it can never
flip a YES to a NO or vice versa.  Re-running with a larger budget
monotonically refines ``UNKNOWN`` toward the exact verdict
(docs/FORMALISM.md, "Budgeted execution").

All of :class:`PartialResult`, :class:`ExecutionBudget` (sans token) and
:class:`BudgetExceededError` pickle cleanly, so budgets cross the
process-pool boundary as plain limit tuples and a worker's budget trip
propagates back to the parent intact.

Persistence posture (PR 7): budget-tripped partial results are **never
persisted**.  A trip raises out of the hot loop *before* the engine's
memoization point, and the persistent store
(:mod:`repro.core.store`) only receives closures at that point — so
neither the RAM memo nor the on-disk store can ever serve a truncated
closure to a later (possibly unbudgeted) query.  Governed runs that
*complete* within budget are exact by the argument above and are
persisted like any other result.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace

from repro import obs
from repro.core.errors import ReproError

#: Default number of expansions between two budget checks inside a hot
#: loop.  Large enough that the check amortizes to well under 5% of the
#: loop body (see benchmarks/test_a3_budget.py), small enough that a
#: deadline is honoured within a few milliseconds of work.
CHECK_INTERVAL = 256


class CancellationToken:
    """Cooperative cancellation: callers :meth:`cancel`, governed loops
    observe ``token.cancelled`` at their next budget check.

    Thread-safe (a :class:`threading.Event` underneath).  Tokens do not
    cross process boundaries — a process-pool fan-out under a token is
    cancelled between tasks by the parent, not mid-task by the worker.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CancellationToken(cancelled={self.cancelled})"


@dataclass(frozen=True)
class PartialResult:
    """What a governed run had established when its budget tripped.

    The verdict is always ``UNKNOWN``: the run saw ``expanded`` pair
    expansions of ``discovered`` discovered pair nodes, with ``frontier``
    still unexplored — an under-approximation of the closure, so no
    negative verdict is available (see module docstring).
    """

    label: str
    reason: str  # "deadline" | "max_expanded" | "max_pairs" | "cancelled"
    expanded: int
    discovered: int
    frontier: int
    elapsed: float
    verdict: str = "UNKNOWN"

    def describe(self) -> str:
        return (
            f"{self.verdict} [{self.reason}] {self.label}: "
            f"{self.expanded} expanded / {self.discovered} discovered, "
            f"frontier {self.frontier}, {self.elapsed:.3f}s elapsed"
        )


class BudgetExceededError(ReproError):
    """A governed loop ran out of budget.  Carries the
    :class:`PartialResult` snapshot so callers can degrade (report
    ``UNKNOWN``, fall back to per-operation obligations, retry with a
    larger budget) instead of aborting a whole certification."""

    def __init__(self, partial: PartialResult) -> None:
        self.partial = partial
        super().__init__(partial.describe())

    def __reduce__(self):  # exceptions must survive the process boundary
        return (BudgetExceededError, (self.partial,))


@dataclass(frozen=True)
class ExecutionBudget:
    """Limits for one governed execution region.

    All limits are optional; an all-``None`` budget is unbounded and
    :meth:`start` returns ``None`` so hot loops keep their unmetered fast
    path.  ``max_seconds`` is wall-clock per governed run (each closure /
    sweep started under the budget gets its own clock); ``max_expanded``
    bounds pair-node *expansions*; ``max_pairs`` bounds distinct pair
    nodes *discovered* (memory); ``token`` cancels cooperatively.
    """

    max_seconds: float | None = None
    max_expanded: int | None = None
    max_pairs: int | None = None
    token: CancellationToken | None = None
    check_interval: int = CHECK_INTERVAL

    @property
    def bounded(self) -> bool:
        return (
            self.max_seconds is not None
            or self.max_expanded is not None
            or self.max_pairs is not None
            or self.token is not None
        )

    def start(self, label: str = "") -> "BudgetMeter | None":
        """A fresh meter for one governed run, or ``None`` if unbounded."""
        if not self.bounded:
            return None
        return BudgetMeter(self, label)

    def limits(self) -> tuple[float | None, int | None, int | None]:
        """The picklable limit tuple shipped to process-pool workers
        (tokens stay in the parent; see :class:`CancellationToken`)."""
        return (self.max_seconds, self.max_expanded, self.max_pairs)

    @classmethod
    def from_limits(
        cls, limits: tuple[float | None, int | None, int | None]
    ) -> "ExecutionBudget":
        max_seconds, max_expanded, max_pairs = limits
        return cls(
            max_seconds=max_seconds,
            max_expanded=max_expanded,
            max_pairs=max_pairs,
        )

    def scaled(self, factor: float) -> "ExecutionBudget":
        """The same budget with every numeric limit multiplied by
        ``factor`` — the retry-with-a-larger-budget helper.  A zero
        limit scales from one unit (1 ms / 1 expansion / 1 pair):
        multiplying zero would return the same exhausted budget and the
        retry could never make progress."""
        return replace(
            self,
            max_seconds=None
            if self.max_seconds is None
            else max(self.max_seconds, 1e-3) * factor,
            max_expanded=None
            if self.max_expanded is None
            else int(max(self.max_expanded, 1) * factor),
            max_pairs=None
            if self.max_pairs is None
            else int(max(self.max_pairs, 1) * factor),
        )


class BudgetMeter:
    """The mutable per-run counterpart of an :class:`ExecutionBudget`.

    Hot loops call :meth:`check` periodically (every
    ``budget.check_interval`` expansions); the meter raises
    :class:`BudgetExceededError` with a :class:`PartialResult` when a
    limit trips.  One meter governs one logical run — a closure BFS plus
    the sweeps answered from it share the meter's clock.
    """

    __slots__ = ("budget", "label", "started", "deadline", "expanded", "discovered")

    def __init__(self, budget: ExecutionBudget, label: str = "") -> None:
        self.budget = budget
        self.label = label
        self.started = time.perf_counter()
        self.deadline = (
            None
            if budget.max_seconds is None
            else self.started + budget.max_seconds
        )
        self.expanded = 0
        self.discovered = 0

    @property
    def interval(self) -> int:
        return self.budget.check_interval

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def check(self, expanded: int, discovered: int, frontier: int = 1) -> None:
        """Record progress and raise if any limit has tripped.

        ``frontier`` is the remaining-work estimate at the check point.
        The expansion limit trips only while work remains (``frontier >
        0``): a run that finishes using exactly its budget *completes* —
        tripping it would turn a correct verdict into ``UNKNOWN``.  A
        zero-expansion budget therefore trips at the pre-loop check,
        before any pair is expanded.
        """
        self.expanded = expanded
        self.discovered = discovered
        budget = self.budget
        if (
            budget.max_expanded is not None
            and frontier > 0
            and expanded >= budget.max_expanded
        ):
            raise BudgetExceededError(self._snapshot("max_expanded", frontier))
        if budget.max_pairs is not None and discovered > budget.max_pairs:
            raise BudgetExceededError(self._snapshot("max_pairs", frontier))
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise BudgetExceededError(self._snapshot("deadline", frontier))
        if budget.token is not None and budget.token.cancelled:
            raise BudgetExceededError(self._snapshot("cancelled", frontier))

    def advance(self, delta: int, discovered: int, frontier: int = 1) -> None:
        """Bulk-loop metering: add ``delta`` expansions to the running
        count and check.  The scalar BFS calls :meth:`check` with an
        absolute cursor every ``interval`` expansions; bulk kernels
        (:mod:`repro.core.bitset`) expand a whole frontier chunk per
        step, so they meter in frontier-sized increments instead.  The
        same trip semantics apply — in particular ``frontier == 0``
        (nothing left after this chunk) never trips ``max_expanded``.
        """
        self.check(self.expanded + delta, discovered, frontier)

    def _snapshot(self, reason: str, frontier: int) -> PartialResult:
        return PartialResult(
            label=self.label,
            reason=reason,
            expanded=self.expanded,
            discovered=self.discovered,
            frontier=frontier,
            elapsed=self.elapsed,
        )


@dataclass(frozen=True)
class ExecutionReport:
    """Accounting for one governed execution (a closure, a sweep, or a
    whole warm fan-out): how much work ran, how it was executed, and how
    it degraded.

    ``executor`` is the path that ultimately produced the result
    (``"process"``, ``"thread"``, ``"serial"``); ``degradations`` lists
    the ladder steps taken (e.g. ``("process->thread",)``); ``retries``
    counts pool re-creations after worker death.  ``completed`` is False
    exactly when the run ended in :class:`BudgetExceededError`, in which
    case ``partial`` holds the snapshot.
    """

    label: str
    executor: str = "serial"
    expansions: int = 0
    retries: int = 0
    degradations: tuple[str, ...] = ()
    elapsed: float = 0.0
    completed: bool = True
    partial: PartialResult | None = None

    def describe(self) -> str:
        bits = [
            f"{self.label}: {self.expansions} expansions via {self.executor}",
            f"{self.elapsed:.3f}s",
        ]
        if self.retries:
            bits.append(f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}")
        if self.degradations:
            bits.append("degraded " + ", ".join(self.degradations))
        if not self.completed:
            bits.append(
                "BUDGET EXCEEDED"
                + (f" ({self.partial.reason})" if self.partial else "")
            )
        return "  ".join(bits)


#: Default :class:`ExecutionLog` ring-buffer capacity.  Long sessions
#: (one shared engine per system, many audits) previously grew the log
#: without bound; a ring keeps the freshest reports and counts the rest.
LOG_CAPACITY = 1024


class ExecutionLog:
    """Thread-safe **bounded** collector of :class:`ExecutionReport`
    entries — one per governed run on an engine.

    The log is a ring buffer of ``capacity`` reports: the newest always
    fit, the oldest are dropped and counted (:attr:`dropped`), so a
    long-lived shared engine cannot leak memory through its own
    accounting.  Every :meth:`record` also feeds the telemetry counters
    (``execution.reports``, ``budget.trips``, ``pool.retries``,
    ``pool.degradations``) when :mod:`repro.obs` is enabled, which is
    how the coarse PR-4 signal and the PR-5 trace stream stay in sync.

    ``describe()`` renders the audit/CLI "execution" section;
    ``summary()`` aggregates the counters.
    """

    def __init__(self, capacity: int = LOG_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._lock = threading.Lock()
        self.capacity = capacity
        self._reports: deque[ExecutionReport] = deque(maxlen=capacity)
        self._dropped = 0
        self._recorded = 0

    def record(self, report: ExecutionReport) -> None:
        with self._lock:
            if len(self._reports) == self.capacity:
                self._dropped += 1
                obs.count("execution.reports_dropped")
            self._reports.append(report)
            self._recorded += 1
            size = len(self._reports)
        obs.count("execution.reports")
        obs.gauge_max("execution.log_size", size)
        if not report.completed:
            obs.count("budget.trips")
        if report.retries:
            obs.count("pool.retries", report.retries)
        if report.degradations:
            obs.count("pool.degradations", len(report.degradations))

    @property
    def reports(self) -> tuple[ExecutionReport, ...]:
        with self._lock:
            return tuple(self._reports)

    @property
    def dropped(self) -> int:
        """Reports evicted by the ring since construction/clear."""
        with self._lock:
            return self._dropped

    @property
    def recorded(self) -> int:
        """Total reports ever recorded (kept + dropped)."""
        with self._lock:
            return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._reports.clear()
            self._dropped = 0
            self._recorded = 0

    def summary(self) -> dict[str, object]:
        with self._lock:
            reports = tuple(self._reports)
            dropped = self._dropped
        degradations: list[str] = []
        for report in reports:
            degradations.extend(report.degradations)
        return {
            "runs": len(reports),
            "capacity": self.capacity,
            "dropped": dropped,
            "expansions": sum(r.expansions for r in reports),
            "retries": sum(r.retries for r in reports),
            "degradations": tuple(degradations),
            "incomplete": sum(1 for r in reports if not r.completed),
            "elapsed": sum(r.elapsed for r in reports),
        }

    def describe(self) -> str:
        reports = self.reports
        if not reports:
            return "execution: no governed runs recorded"
        lines = ["execution:"]
        lines.extend("  " + report.describe() for report in reports)
        s = self.summary()
        tail = (
            f"  total: {s['runs']} runs, {s['expansions']} expansions, "
            f"{s['retries']} retries, {s['incomplete']} incomplete"
        )
        if s["dropped"]:
            tail += (
                f" (ring capacity {s['capacity']}, "
                f"{s['dropped']} older report(s) dropped)"
            )
        lines.append(tail)
        return "\n".join(lines)
