"""Fault injection for the execution layer (chaos testing).

The fault-tolerant pool in :mod:`repro.core.engine` is only trustworthy
if worker death, task delays and transient task errors are *rehearsed*.
This module is the single seam the execution layer passes through:
:func:`inject` is called at each instrumented point with the point name
and the task index, and either returns silently (the overwhelmingly
common case — one dict lookup plus an env probe) or enacts a configured
fault.

Faults are configured two ways:

- **Monkeypatching** (unit tests): replace :func:`inject` or install a
  :class:`FaultPlan` via :func:`set_plan` / the :func:`active_plan`
  context manager.
- **Environment** (cross-process, CI chaos job): ``REPRO_FAULTS`` holds a
  comma-separated spec list, e.g.::

      REPRO_FAULTS="kill:worker:2,delay:task:1:0.05"
      REPRO_FAULTS_STAMP=/tmp/run-xyz   # exactly-once marker prefix

  Each spec is ``kind:point:task[:arg]``.  Kinds:

  - ``kill``  — ``os._exit(17)`` (simulates hard worker death; only
    meaningful at process-worker points),
  - ``delay`` — ``time.sleep(arg)`` seconds,
  - ``err``   — raise :class:`InjectedFaultError`.

  With ``REPRO_FAULTS_STAMP`` set, each spec fires **exactly once**
  across all processes: before enacting, the injector atomically creates
  ``<stamp>.<spec-index>`` (``O_CREAT | O_EXCL``); if the file already
  exists the fault is skipped.  Without a stamp prefix, env-configured
  ``kill`` specs would re-fire on every retry and the degradation ladder
  could never succeed — so ``kill`` requires a stamp and is otherwise
  ignored.

Faults never corrupt data: a kill is process death *before* the task
computes, a delay is pure latency, an error is a clean raise.  There is
deliberately no "corrupt result" fault — the memo-integrity chaos tests
assert that whatever survives the ladder is bit-identical to the seed
path, and a corruption fault would turn that invariant into a tautology
about the injector instead of the engine.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.core.errors import ReproError

#: Instrumented points, for reference: ``"worker"`` — a process-pool
#: worker about to compute task ``index``; ``"task"`` — the parent
#: thread-pool / serial path about to compute task ``index``;
#: ``"serve.admit"`` — the service's admission controller about to admit
#: request number ``index``; ``"serve.request"`` — a service executor
#: thread about to run the engine work for request number ``index``.
#: The serve points index by *request ordinal* (1-based arrival order),
#: not task id, so chaos suites can hit "the third request" exactly.
POINTS = ("worker", "task", "serve.admit", "serve.request")

ENV_FAULTS = "REPRO_FAULTS"
ENV_STAMP = "REPRO_FAULTS_STAMP"

_EXIT_CODE = 17


class InjectedFaultError(ReproError):
    """A deliberately injected task failure (the ``err`` fault kind)."""

    def __init__(self, point: str, task: int) -> None:
        self.point = point
        self.task = task
        super().__init__(f"injected fault at {point}:{task}")


@dataclass(frozen=True)
class FaultSpec:
    """One configured fault: fire ``kind`` when ``point``/``task`` match."""

    kind: str  # "kill" | "delay" | "err"
    point: str
    task: int
    arg: float = 0.0

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        parts = text.strip().split(":")
        if len(parts) not in (3, 4):
            raise ValueError(f"bad fault spec {text!r} (kind:point:task[:arg])")
        kind, point, task = parts[0], parts[1], int(parts[2])
        if kind not in ("kill", "delay", "err"):
            raise ValueError(f"unknown fault kind {kind!r} in {text!r}")
        if point not in POINTS:
            raise ValueError(f"unknown fault point {point!r} in {text!r}")
        arg = float(parts[3]) if len(parts) == 4 else 0.0
        return cls(kind=kind, point=point, task=task, arg=arg)


@dataclass
class FaultPlan:
    """A parsed set of fault specs plus the exactly-once stamp prefix.

    In-process plans (installed with :func:`set_plan`) track firing in
    the ``fired`` set; env plans re-parsed in other processes coordinate
    through stamp files instead.
    """

    specs: tuple[FaultSpec, ...] = ()
    stamp: str | None = None
    fired: set[int] = field(default_factory=set)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        raw = os.environ.get(ENV_FAULTS)
        if not raw:
            return None
        specs = tuple(
            FaultSpec.parse(part) for part in raw.split(",") if part.strip()
        )
        return cls(specs=specs, stamp=os.environ.get(ENV_STAMP))

    def _claim(self, index: int) -> bool:
        """True iff this process wins the right to fire spec ``index``."""
        if self.stamp is None:
            if index in self.fired:
                return False
            self.fired.add(index)
            return True
        path = f"{self.stamp}.{index}"
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def enact(self, point: str, task: int) -> None:
        for index, spec in enumerate(self.specs):
            if spec.point != point or spec.task != task:
                continue
            if spec.kind == "kill" and self.stamp is None:
                # Without exactly-once coordination a kill would re-fire
                # on every retry and defeat the ladder; refuse quietly.
                continue
            if not self._claim(index):
                continue
            if spec.kind == "kill":
                os._exit(_EXIT_CODE)
            elif spec.kind == "delay":
                time.sleep(spec.arg)
            else:
                raise InjectedFaultError(point, task)


#: The in-process plan, if any (tests install one via set_plan()).
_PLAN: FaultPlan | None = None


def set_plan(plan: FaultPlan | None) -> None:
    """Install (or clear) the in-process fault plan."""
    global _PLAN
    _PLAN = plan


@contextmanager
def active_plan(plan: FaultPlan):
    """Scoped :func:`set_plan` for tests."""
    previous = _PLAN
    set_plan(plan)
    try:
        yield plan
    finally:
        set_plan(previous)


def inject(point: str, task: int) -> None:
    """The execution layer's fault seam.  No-op unless a plan is
    installed in-process or ``REPRO_FAULTS`` is set in the environment.
    """
    plan = _PLAN
    if plan is None:
        if ENV_FAULTS not in os.environ:
            return
        plan = FaultPlan.from_env()
        if plan is None:
            return
    plan.enact(point, task)
