"""Shared-memory kernel arena for process-pool fan-out.

``DependencyEngine._warm`` previously shipped the whole
:class:`~repro.core.compiled.CompiledKernel` to every pool worker by
pickle: the flat successor and column arrays — the only large part —
were serialized once per worker and unpickled into per-process copies.
This module moves those arrays into one
:class:`multiprocessing.shared_memory.SharedMemory` block instead.  The
parent builds a :class:`KernelArena` (one copy of every table into the
block), ships the tiny picklable :class:`KernelHandle` (block name plus
shape metadata) through the pool initializer, and each worker
:meth:`attaches <KernelHandle.attach>` zero-copy ``memoryview`` casts
over the same physical pages.  The reconstructed kernel is
indistinguishable to the BFS: ``array('L')`` and a ``memoryview`` cast
to ``'L'`` answer integer indexing identically.

Failure posture: arena creation can fail on platforms without usable
POSIX shared memory — the engine catches that and falls back to pickling
the kernel, so shared memory is an optimization, never a requirement.
The well-known CPython < 3.13 wart where *attaching* registers the block
with the resource tracker is neutralized by suppressing the registration
during attach (``track=False`` on 3.13+).  Unregistering *after* attach
— the other common workaround — is wrong for fork-started pools: the
children share the parent's tracker process, so a worker's unregister
would delete the parent's own registration and the parent's ``unlink``
would then crash the tracker loop.  The parent remains the single owner
and unlinks in ``finally``.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

from repro.core.compiled import CompiledKernel

#: Bytes per table entry: every kernel table is ``array('L')``.
ITEM_SIZE = array("L").itemsize


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering it with the resource
    tracker.

    On CPython < 3.13 merely *attaching* registers the segment, which
    makes the tracker unlink (or warn about) pages the worker never
    owned.  3.13+ exposes ``track=False`` for exactly this; earlier
    versions get the registration suppressed for the duration of the
    constructor — safe here because attach happens in the pool
    initializer, before the worker runs anything concurrent.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    original = resource_tracker.register

    def _skip(resource_name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(resource_name, rtype)

    resource_tracker.register = _skip
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class KernelHandle:
    """The picklable pointer a pool worker needs to rebuild the kernel:
    the shared block's name plus the small immutable metadata
    (everything except the flat tables).  ``attach`` is the inverse of
    :meth:`KernelArena.create`."""

    name: str
    n: int
    names: tuple[str, ...]
    sizes: tuple[int, ...]
    strides: tuple[int, ...]
    op_names: tuple[str, ...]
    n_successors: int

    def attach(self) -> tuple[CompiledKernel, shared_memory.SharedMemory]:
        """Map the arena and rebuild a ``CompiledKernel`` whose tables
        are ``memoryview`` casts into it.  The returned block must stay
        referenced as long as the kernel is used (the views borrow its
        buffer) — workers park it in a module global."""
        block = _attach_untracked(self.name)
        span = self.n * ITEM_SIZE
        view = memoryview(block.buf)
        tables = tuple(
            view[k * span : (k + 1) * span].cast("L")
            for k in range(self.n_successors + len(self.names))
        )
        kernel = CompiledKernel(
            self.n,
            self.names,
            self.sizes,
            self.strides,
            tables[self.n_successors :],
            self.op_names,
            tables[: self.n_successors],
        )
        return kernel, block


class KernelArena:
    """Parent-side owner of one kernel's shared tables.

    Layout: the successor arrays then the column arrays, back to back,
    each exactly ``n`` items of ``'L'``.  The arena owns the block: it
    is created here, every worker attaches read-only by convention, and
    :meth:`destroy` (in the warm fan-out's ``finally``) closes and
    unlinks it exactly once.
    """

    __slots__ = ("_block", "_handle", "size")

    def __init__(
        self, block: shared_memory.SharedMemory, handle: KernelHandle, size: int
    ) -> None:
        self._block = block
        self._handle = handle
        self.size = size

    @classmethod
    def create(cls, kernel: CompiledKernel) -> "KernelArena":
        tables = (*kernel.successors, *kernel.columns)
        total = max(len(tables) * kernel.n * ITEM_SIZE, 1)
        block = shared_memory.SharedMemory(create=True, size=total)
        offset = 0
        for table in tables:
            raw = bytes(table) if not isinstance(table, array) else table.tobytes()
            block.buf[offset : offset + len(raw)] = raw
            offset += len(raw)
        handle = KernelHandle(
            name=block.name,
            n=kernel.n,
            names=kernel.names,
            sizes=kernel.sizes,
            strides=kernel.strides,
            op_names=kernel.op_names,
            n_successors=len(kernel.successors),
        )
        return cls(block, handle, total)

    @classmethod
    def from_store(cls, store, system_hash: str) -> "KernelArena | None":
        """Hydrate an arena straight from a persistent store
        (:class:`~repro.core.store.PersistentStore`) — no system object,
        no operation execution, no recompile.  This is the service
        warm-boot path: a process that knows a system's canonical hash
        places the stored tables directly into shared memory and fans
        workers out over them.  Returns ``None`` when the store has no
        kernel for ``system_hash`` (or has degraded)."""
        kernel = store.load_kernel(system_hash)
        if kernel is None:
            return None
        return cls.create(kernel)

    def handle(self) -> KernelHandle:
        return self._handle

    def destroy(self) -> None:
        """Close this mapping and unlink the segment.  Safe to call
        once the pool has shut down; on Linux, unlinking while workers
        are still attached only removes the name — the pages survive
        until the last mapping drops."""
        try:
            self._block.close()
        except Exception:
            pass
        try:
            self._block.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass
