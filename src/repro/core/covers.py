"""Separation of variety and inductive covers.

Two cover-based techniques extend Strong Dependency Induction:

- **A-independent covers** (Def 4-1, Theorems 4-4/4-5, section 4.5) handle
  *non-transitive* dependency.  If constraints ``phi_1..phi_n`` cover the
  state space along lines independent of the source set A, then any
  transmission from A must already happen under one of the ``phi_i`` —
  so proving ``not A |>_{phi & phi_i} beta`` for *every* i proves
  ``not A |>_phi beta``.

- **Inductive covers** (Def 6-2, Theorem 6-7, section 6.4) handle
  *non-invariant* constraints.  If every ``[H]phi`` is contained in some
  member of the cover (e.g. Floyd assertions indexed by program counter),
  per-operation obligations under each member suffice.

Both are implemented as checkable objects: the *cover conditions* are
decided exactly over the finite space, and the *application theorems* are
provided as provers that compose with the induction engine.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.errors import CoverError
from repro.core.induction import Obligation, Proof, prove_no_dependency_nonautonomous
from repro.core.state import State
from repro.core.system import System


class IndependentCover:
    """A family ``{phi_i}`` intended as an A-independent cover (Def 4-1).

    >>> from repro.core.state import boolean_space
    >>> sp = boolean_space("alpha", "q")
    >>> cover = IndependentCover([
    ...     Constraint(sp, lambda s: s["q"], name="q"),
    ...     Constraint(sp, lambda s: not s["q"], name="~q"),
    ... ])
    >>> cover.check({"alpha"}).valid
    True
    """

    def __init__(self, members: Sequence[Constraint]) -> None:
        members = list(members)
        if not members:
            raise CoverError("a cover needs at least one member")
        space = members[0].space
        for member in members[1:]:
            if member.space != space:
                raise CoverError("cover members are over different spaces")
        self.members: tuple[Constraint, ...] = tuple(members)
        self.space = space

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def check(self, independent_of: Iterable[str]) -> Proof:
        """Decide Def 4-1: every member is A-independent and the members
        jointly cover the whole space."""
        names = self.space.check_names(independent_of)
        obligations = [
            Obligation(
                f"{member.name} is {sorted(names)}-independent",
                member.is_independent_of(names),
                member.independence_witness(names),
            )
            for member in self.members
        ]
        uncovered = self.uncovered_state()
        obligations.append(
            Obligation(
                "members cover the entire state space",
                uncovered is None,
                uncovered,
            )
        )
        return Proof(
            conclusion=f"{{{', '.join(m.name for m in self.members)}}} "
            f"is an {sorted(names)}-independent cover",
            obligations=tuple(obligations),
        )

    def uncovered_state(self) -> State | None:
        """A state satisfied by no member, or None if the family covers."""
        for state in self.space.states():
            if not any(member(state) for member in self.members):
                return state
        return None

    def prove_no_dependency(
        self,
        system: System,
        sources: Iterable[str],
        beta: str,
        phi: Constraint | None = None,
        prover: Callable[[System, Constraint, frozenset[str], str], Proof]
        | None = None,
    ) -> Proof:
        """Theorem 4-5's proof technique: to show ``not A |>_phi beta``,
        exhibit an A-independent cover and show
        ``not A |>_{phi & phi_i} beta`` for every member.

        Each per-member goal (a for-all-histories statement) is discharged
        by ``prover``; the default uses Corollary 5-6
        (:func:`~repro.core.induction.prove_no_dependency_nonautonomous`),
        which only requires the conjoined constraint to be invariant.
        """
        source_set = system.space.check_names(sources)
        base = phi if phi is not None else Constraint.true(system.space)
        if prover is None:
            prover = lambda sys_, cphi, a_set, target: (
                prove_no_dependency_nonautonomous(sys_, cphi, a_set, target)
            )
        obligations: list[Obligation] = []
        cover_proof = self.check(source_set)
        obligations.append(
            Obligation(cover_proof.conclusion, cover_proof.valid, cover_proof)
        )
        sub_proofs: list[Proof] = []
        for member in self.members:
            conjoined = (base & member).renamed(f"{base.name}&{member.name}")
            sub = prover(system, conjoined, source_set, beta)
            sub_proofs.append(sub)
            obligations.append(Obligation(sub.conclusion, sub.valid, sub))
        return Proof(
            conclusion=f"not {sorted(source_set)} |>_{base.name} {beta} "
            "(by separation of variety, Thm 4-5)",
            obligations=tuple(obligations),
        )


def partition_by_value(space, name: str) -> IndependentCover:
    """The canonical cover that *separates the variety* of one object: one
    member per domain value (``phi_i(s) == s.name = v_i``), as in the
    section 4.6 examples."""
    members = [
        Constraint.equals(space, name, value) for value in space.domain(name)
    ]
    return IndependentCover(members)


def partition_by(space, fn: Callable[[State], object], name: str = "part") -> IndependentCover:
    """Cover induced by the fibers of an arbitrary state function."""
    keys: dict[object, None] = {}
    for state in space.states():
        keys.setdefault(fn(state))
    members = [
        Constraint(space, (lambda k: lambda s: fn(s) == k)(key), name=f"{name}={key!r}")
        for key in keys
    ]
    return IndependentCover(members)


class InductiveCover:
    """A family ``{phi_i}`` intended as an inductive cover for phi (Def 6-2):
    for every history H, ``[H]phi`` is contained in some member.

    Def 6-2 quantifies over infinitely many histories; for finite systems it
    is decided *exactly* by a fixpoint over reachable image sets: the
    distinct sets ``[H]phi`` form a finite transition system under the
    operations (each delta maps image set S to delta(S)), which
    :meth:`check` explores exhaustively.
    """

    def __init__(self, members: Sequence[Constraint]) -> None:
        members = list(members)
        if not members:
            raise CoverError("a cover needs at least one member")
        space = members[0].space
        for member in members[1:]:
            if member.space != space:
                raise CoverError("cover members are over different spaces")
        self.members: tuple[Constraint, ...] = tuple(members)
        self.space = space

    def __iter__(self):
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def _containing_member(self, image: frozenset[State]) -> Constraint | None:
        for member in self.members:
            if image <= member.satisfying:
                return member
        return None

    def check(self, system: System, phi: Constraint) -> Proof:
        """Decide Def 6-2 for ``phi`` by exploring every reachable image set
        ``[H]phi`` of the (finite) system."""
        if system.space != self.space:
            raise CoverError("cover and system are over different spaces")
        initial = frozenset(phi.satisfying)
        seen: set[frozenset[State]] = set()
        frontier: list[tuple[frozenset[State], str]] = [(initial, "lambda")]
        obligations: list[Obligation] = []
        while frontier:
            image, label = frontier.pop()
            if image in seen:
                continue
            seen.add(image)
            member = self._containing_member(image)
            obligations.append(
                Obligation(
                    f"[{label}]{phi.name} is contained in some member"
                    + (f" ({member.name})" if member else ""),
                    member is not None,
                    None if member else sorted(image, key=repr)[:1],
                )
            )
            if member is None:
                continue
            for op in system.operations:
                frontier.append(
                    (frozenset(op(s) for s in image), f"{label} {op.name}")
                )
        return Proof(
            conclusion=f"{{{', '.join(m.name for m in self.members)}}} "
            f"is an inductive cover for {phi.name}",
            obligations=tuple(obligations),
        )

    def prove_no_dependency(
        self,
        system: System,
        sources: Iterable[str],
        beta: str,
        phi: Constraint,
    ) -> Proof:
        """Theorem 6-7's proof technique: with an inductive cover for phi,
        ``not A |>_phi beta`` follows if either
        (a) under every member, no operation transmits from A outside A, or
        (b) under every member, no operation transmits into beta from any
        set excluding beta (decided with the largest such set).
        """
        source_set = system.space.check_names(sources)
        obligations: list[Obligation] = []
        cover_proof = self.check(system, phi)
        obligations.append(
            Obligation(cover_proof.conclusion, cover_proof.valid, cover_proof)
        )

        # Per (member, operation) the engine's fixed-history table answers
        # every target m from one bucket sweep of sat(member), so the
        # m-loop below costs |cover| * |Delta| sweeps, not that times n.
        engine = shared_engine(system)

        out_failures: list[Obligation] = []
        for member in self.members:
            for m in system.space.names:
                if m in source_set:
                    continue
                for op in system.operations:
                    result = engine.depends_history(source_set, m, op, member)
                    if result:
                        out_failures.append(
                            Obligation(
                                f"A |>^{op.name}_{member.name} {m}",
                                False,
                                result.witness,
                            )
                        )
        alt_a = Obligation(
            "(a) under every member, A transmits only into A",
            not out_failures,
            out_failures[0].witness if out_failures else None,
        )

        everything_else = frozenset(system.space.names) - {beta}
        in_failure = None
        if everything_else:
            for member in self.members:
                for op in system.operations:
                    result = engine.depends_history(
                        everything_else, beta, op, member
                    )
                    if result:
                        in_failure = result.witness
                        break
                if in_failure is not None:
                    break
        alt_b = Obligation(
            f"(b) under every member, nothing outside {{{beta}}} transmits "
            f"to {beta}",
            in_failure is None,
            in_failure,
        )

        alternatives = Obligation(
            "alternative (a) or alternative (b) holds", alt_a.ok or alt_b.ok
        )
        obligations.extend(
            ob for ob in (alt_a, alt_b) if ob.ok or not alternatives.ok
        )
        obligations.append(alternatives)
        return Proof(
            conclusion=f"not {sorted(source_set)} |>_{phi.name} {beta} "
            "(by inductive cover, Thm 6-7)",
            obligations=tuple(obligations),
        )
