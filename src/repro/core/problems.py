"""Information problems and their solutions (chapter 3).

The paper defines a *problem* as a predicate ``chi(phi)`` over candidate
initial constraints; phi *solves* the problem when ``chi(phi)`` holds.
Three families are implemented:

- :class:`EnforcementProblem` (Def 1-4, section 1.4): behavioral problems —
  phi enforces Psi when every behavior from a phi-state is acceptable.
  These are the *contrast class*: the paper's point is that information
  problems are **not** enforcement problems.
- :class:`NoTransmissionProblem` (section 3.2):
  ``chi(phi) == not A |>_phi beta  [and phi A-independent]``.
- :class:`ConfinementProblem` and :class:`SecurityProblem` (section 3.4),
  including the declassification extension sketched in section 7.5.

All information problems here are *antitone*: any constraint implying a
solution is itself a solution (restricting variety can only remove paths,
Theorem 2-3).  Maximal-solution search exploits this; see
:mod:`repro.analysis.solver`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.errors import ConstraintError
from repro.core.state import State
from repro.core.system import Operation, System


@dataclass(frozen=True)
class ProblemVerdict:
    """Why a candidate constraint does or does not solve a problem."""

    is_solution: bool
    reasons: tuple[str, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.is_solution


class EnforcementProblem:
    """A behavioral problem ``Psi`` given by a per-step acceptability check.

    ``Psi(sigma, H delta)`` holds iff ``Psi(sigma, H)`` holds and the step
    ``delta`` executed in state ``H(sigma)`` is acceptable (section 1.4's
    recursive definition).  ``phi enforces Psi`` (Def 1-4) iff every
    behavior from a phi-state is acceptable — checked exactly for finite
    systems by exploring the reachable states from sat(phi).
    """

    def __init__(
        self,
        system: System,
        step_ok: Callable[[State, Operation], bool],
        name: str = "Psi",
    ) -> None:
        self.system = system
        self.step_ok = step_ok
        self.name = name

    def enforcement_counterexample(
        self, phi: Constraint
    ) -> tuple[State, Operation] | None:
        """A reachable (state, operation) whose step is unacceptable, or
        None if phi enforces Psi.

        Finite-system argument: Psi fails for some <sigma, H> iff some
        state reachable from sat(phi) executes an unacceptable step; the
        reachable set is computed by fixpoint.
        """
        if phi.space != self.system.space:
            raise ConstraintError("constraint and system over different spaces")
        seen: set[State] = set(phi.satisfying)
        frontier = list(seen)
        while frontier:
            state = frontier.pop()
            for op in self.system.operations:
                if not self.step_ok(state, op):
                    return (state, op)
                successor = op(state)
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return None

    def enforces(self, phi: Constraint) -> bool:
        """Def 1-4: ``(forall sigma, H)(phi(sigma) implies Psi(sigma, H))``."""
        return self.enforcement_counterexample(phi) is None


class InformationProblem:
    """Base class: a problem is a predicate over candidate constraints."""

    name = "chi"

    def verdict(self, phi: Constraint) -> ProblemVerdict:
        raise NotImplementedError

    def is_solution(self, phi: Constraint) -> bool:
        return bool(self.verdict(phi))

    def solutions_among(
        self, candidates: Iterable[Constraint]
    ) -> list[Constraint]:
        return [phi for phi in candidates if self.is_solution(phi)]


class NoTransmissionProblem(InformationProblem):
    """``chi(phi) == not A |>_phi beta`` (section 3.2), optionally requiring
    phi to be A-independent (Def 3-1) to exclude degenerate
    "freeze-the-source" solutions.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    >>> _ = b.op_if("delta", var("m"), "beta", var("alpha"))
    >>> system = b.build()
    >>> problem = NoTransmissionProblem(system, {"alpha"}, "beta")
    >>> phi = Constraint(system.space, lambda s: not s["m"], name="~m")
    >>> problem.is_solution(phi)
    True
    """

    def __init__(
        self,
        system: System,
        sources: Iterable[str],
        target: str,
        require_independent: bool = False,
    ) -> None:
        self.system = system
        self.sources = system.space.check_names(sources)
        self.target = target
        system.space.check_names([target])
        self.require_independent = require_independent
        self.name = f"not {sorted(self.sources)} |> {target}"

    def verdict(self, phi: Constraint) -> ProblemVerdict:
        reasons: list[str] = []
        if self.require_independent and not phi.is_independent_of(self.sources):
            reasons.append(
                f"{phi.name} is not {sorted(self.sources)}-independent"
            )
        result = shared_engine(self.system).depends_ever(
            self.sources, self.target, phi
        )
        if result:
            reasons.append(
                f"dependency persists: {result.witness.history!r} transmits"
            )
        return ProblemVerdict(not reasons, tuple(reasons))


class ConfinementProblem(InformationProblem):
    """Lampson's Confinement Problem (section 3.4)::

        chi(phi) == forall alpha, beta:
            alpha |>_phi beta  and  Confined(alpha)  implies  not Spy(beta)

    ``declassifiers`` implements the section 7.5 extension: paths whose
    source/target pair appears there are exempted, modelling trustworthy
    declassification.
    """

    def __init__(
        self,
        system: System,
        confined: Iterable[str],
        spies: Iterable[str],
        declassifiers: Iterable[tuple[str, str]] = (),
    ) -> None:
        self.system = system
        self.confined = system.space.check_names(confined)
        self.spies = system.space.check_names(spies)
        self.declassifiers = frozenset(declassifiers)
        self.name = (
            f"confine {sorted(self.confined)} from {sorted(self.spies)}"
        )

    def forbidden_paths(self) -> list[tuple[str, str]]:
        """The (source, target) pairs the problem forbids."""
        return [
            (alpha, beta)
            for alpha in sorted(self.confined)
            for beta in sorted(self.spies)
            if (alpha, beta) not in self.declassifiers
        ]

    def verdict(self, phi: Constraint) -> ProblemVerdict:
        reasons: list[str] = []
        engine = shared_engine(self.system)
        for alpha, beta in self.forbidden_paths():
            # One closure per confined alpha answers every spy beta.
            result = engine.depends_ever({alpha}, beta, phi)
            if result:
                reasons.append(
                    f"confined {alpha} still transmits to spy {beta} "
                    f"via {result.witness.history!r}"
                )
        return ProblemVerdict(not reasons, tuple(reasons))


class TrustedDeclassificationProblem(InformationProblem):
    """The section 7.5 extension, operation-centric: certain *trustworthy
    executors* (operations) are allowed to transmit where transmission
    would not normally be permitted.

    ``chi(phi)`` holds iff every forbidden path is **mediated**: with the
    trusted operations removed from the system, no confined object
    transmits to any spy.  (Flows that do occur in the full system must
    therefore pass through a trusted operation — the Bell & LaPadula 73
    trusted-subject discipline, stated information-theoretically.)
    """

    def __init__(
        self,
        system: System,
        confined: Iterable[str],
        spies: Iterable[str],
        trusted_operations: Iterable[str],
    ) -> None:
        self.system = system
        self.confined = system.space.check_names(confined)
        self.spies = system.space.check_names(spies)
        trusted = frozenset(trusted_operations)
        known = set(system.operation_names)
        unknown = trusted - known
        if unknown:
            raise ConstraintError(
                f"unknown trusted operations {sorted(unknown)!r}"
            )
        self.trusted_operations = trusted
        self.untrusted_system = System(
            system.space,
            [op for op in system.operations if op.name not in trusted],
            check_closed=False,
        )
        self.name = (
            f"confine {sorted(self.confined)} from {sorted(self.spies)} "
            f"except via {sorted(trusted)}"
        )

    def verdict(self, phi: Constraint) -> ProblemVerdict:
        reasons: list[str] = []
        engine = shared_engine(self.untrusted_system)
        for alpha in sorted(self.confined):
            for beta in sorted(self.spies):
                result = engine.depends_ever({alpha}, beta, phi)
                if result:
                    reasons.append(
                        f"{alpha} reaches {beta} WITHOUT any trusted "
                        f"operation, via {result.witness.history!r}"
                    )
        return ProblemVerdict(not reasons, tuple(reasons))

    def unmediated_paths(
        self, phi: Constraint | None = None
    ) -> list[tuple[str, str]]:
        """Forbidden paths realizable without trusted operations."""
        resolved = (
            phi if phi is not None else Constraint.true(self.system.space)
        )
        engine = shared_engine(self.untrusted_system)
        return [
            (alpha, beta)
            for alpha in sorted(self.confined)
            for beta in sorted(self.spies)
            if engine.depends_ever({alpha}, beta, resolved)
        ]


class SecurityProblem(InformationProblem):
    """The multilevel Security Problem (section 3.4)::

        chi(phi) == forall alpha, beta:
            alpha |>_phi beta  implies  Cls(alpha) <= Cls(beta)

    ``leq`` defaults to ``<=`` on the classification values; pass a partial
    order for Denning-style clearance/classification vectors.
    """

    def __init__(
        self,
        system: System,
        classification: Mapping[str, object],
        leq: Callable[[object, object], bool] | None = None,
    ) -> None:
        self.system = system
        missing = set(system.space.names) - set(classification)
        if missing:
            raise ConstraintError(
                f"classification missing for objects {sorted(missing)!r}"
            )
        self.classification = dict(classification)
        self.leq = leq if leq is not None else (lambda a, b: a <= b)  # type: ignore[operator]
        self.name = "security"

    def verdict(self, phi: Constraint) -> ProblemVerdict:
        reasons: list[str] = []
        engine = shared_engine(self.system)
        for alpha in self.system.space.names:
            for beta in self.system.space.names:
                if self.leq(self.classification[alpha], self.classification[beta]):
                    continue
                result = engine.depends_ever({alpha}, beta, phi)
                if result:
                    reasons.append(
                        f"{alpha} (cls {self.classification[alpha]!r}) "
                        f"transmits down to {beta} "
                        f"(cls {self.classification[beta]!r}) "
                        f"via {result.witness.history!r}"
                    )
        return ProblemVerdict(not reasons, tuple(reasons))
