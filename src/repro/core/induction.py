"""Strong Dependency Induction (chapters 4-6).

Strong dependency quantifies over *all* histories (Def 2-7/2-11), which no
finite amount of per-history checking discharges.  The paper's induction
theorems reduce the question to per-operation obligations:

- **Theorem 4-1** (phi autonomous + invariant): transmission over ``H H'``
  passes through an intermediate object m.
- **Corollary 4-2**: if no single operation transmits out of alpha, or no
  single operation transmits into beta, then ``not alpha |>_phi beta``.
- **Corollary 4-3**: a reflexive transitive relation q closed under
  per-operation dependency bounds all dependency — the formal basis for
  lattice-style security arguments (Denning 75).
- **Theorem 5-4 / Corollary 5-6**: the invariant, possibly non-autonomous
  generalization, with *sets* of intermediate objects.
- **Theorem 6-3 / Corollary 6-5**: the non-invariant generalization via
  ``[H]phi``.

Each prover here returns a :class:`Proof` object listing its obligations
with pass/fail status and witnesses, so a failed proof *explains itself*.

A note on set-quantified obligations: Corollary 5-6's second alternative
quantifies over all sets M ("no M not containing beta transmits to beta").
By monotonicity in the source set (Theorem 2-2) it suffices to test the
single largest candidate ``M = all objects except beta`` — which is how
these obligations are decided in one dependency query each.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro import obs
from repro.core.budget import BudgetExceededError, ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.dependency import DependencyResult, Witness, transmits, transmits_to_set
from repro.core.engine import shared_engine
from repro.core.errors import ProofError
from repro.core.state import State
from repro.core.system import History, System


@dataclass(frozen=True)
class Obligation:
    """One named proof obligation with its outcome."""

    description: str
    ok: bool
    witness: object = None

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class Proof:
    """The outcome of an inductive proof attempt.

    :attr:`valid` means every obligation passed and therefore
    :attr:`conclusion` holds.  When invalid, the failed obligations say
    exactly which per-operation check broke, with a witness.
    """

    conclusion: str
    obligations: tuple[Obligation, ...] = field(default_factory=tuple)

    @property
    def valid(self) -> bool:
        return all(ob.ok for ob in self.obligations)

    def __bool__(self) -> bool:
        return self.valid

    @property
    def failures(self) -> tuple[Obligation, ...]:
        return tuple(ob for ob in self.obligations if not ob.ok)

    def require(self) -> "Proof":
        """Raise :class:`ProofError` unless the proof is valid."""
        if not self.valid:
            summary = "; ".join(ob.description for ob in self.failures[:3])
            raise ProofError(
                f"proof of {self.conclusion!r} failed: {summary}"
            )
        return self

    def describe(self) -> str:
        lines = [f"Proof of: {self.conclusion}", f"valid: {self.valid}"]
        for ob in self.obligations:
            mark = "ok " if ob.ok else "FAIL"
            lines.append(f"  [{mark}] {ob.description}")
        return "\n".join(lines)


def _budget_obligation(exc: BudgetExceededError) -> Obligation:
    """A failed obligation recording a budget trip mid-proof.

    The proof becomes *invalid* — i.e. UNKNOWN, not disproved.  This is
    the sound direction: a valid proof needs every obligation discharged,
    and an exhausted budget only means some obligations were never
    decided (docs/FORMALISM.md, "Budgeted execution").  The partial
    result rides along as the witness so the caller can retry with
    ``budget.scaled(...)``.
    """
    return Obligation(
        f"budget exhausted ({exc.partial.reason}): "
        "remaining obligations UNKNOWN",
        False,
        exc.partial,
    )


@obs.traced("induction.per_operation_flows")
def per_operation_flows(
    system: System,
    constraint: Constraint | None = None,
    sources: Iterable[str] | None = None,
    targets: Iterable[str] | None = None,
    budget: ExecutionBudget | None = None,
) -> dict[tuple[str, str], DependencyResult]:
    """The single-operation dependency relation, maximized over operations:
    ``flows[(x, y)]`` holds iff some delta has ``x |>_phi^delta y``.

    This is the executable analogue of the flow relation
    ``x -(delta)-> y`` the paper derives from semantics (section 1.5), and
    the raw material of every induction argument.

    Membership comes from the engine's :meth:`operation_flows` matrix —
    one bucket pass per source object decides every (operation, target)
    cell — and only the positive cells pay for a witness query (itself a
    memoized batched lookup).  Under a budget the sweeps are governed and
    :class:`~repro.core.budget.BudgetExceededError` propagates to the
    caller (the provers catch it and degrade to an UNKNOWN obligation).
    """
    names_src = tuple(sources) if sources is not None else system.space.names
    names_tgt = tuple(targets) if targets is not None else system.space.names
    engine = shared_engine(system)
    step = engine.operation_flows(constraint, budget)
    flows: dict[tuple[str, str], DependencyResult] = {}
    for x in names_src:
        for y in names_tgt:
            found: DependencyResult | None = None
            for op in system.operations:
                if (x, y) in step[op.name]:
                    found = engine.depends_history({x}, y, op, constraint, budget)
                    break
            if found is None:
                found = DependencyResult(
                    False,
                    frozenset([x]),
                    frozenset([y]),
                    constraint.name if constraint else "tt",
                )
            flows[(x, y)] = found
    return flows


def _check_preconditions(
    system: System, phi: Constraint, need_autonomous: bool
) -> list[Obligation]:
    with obs.span("obligation.preconditions", constraint=phi.name):
        obligations = [
            Obligation(
                f"{phi.name} is invariant under every operation",
                phi.is_invariant(system),
                phi.invariance_witness(system),
            )
        ]
        if need_autonomous:
            obligations.append(
                Obligation(
                    f"{phi.name} is autonomous",
                    phi.is_autonomous(),
                    phi.autonomy_witness(),
                )
            )
        return obligations


@obs.traced("induction.cor4_2")
def prove_no_dependency(
    system: System,
    phi: Constraint | None,
    alpha: str,
    beta: str,
    budget: ExecutionBudget | None = None,
) -> Proof:
    """Corollary 4-2: prove ``not alpha |>_phi beta`` (over *all* histories).

    Requires phi autonomous and invariant and ``alpha != beta``; then it
    suffices that either (a) no operation transmits from alpha to any other
    object, or (b) no operation transmits to beta from any other object.

    The returned proof is *valid* only if the preconditions and at least one
    alternative hold in full.  Under a budget, an exhausted sweep yields
    an *invalid* proof with an UNKNOWN obligation rather than an
    exception (see :func:`_budget_obligation`).
    """
    if alpha == beta:
        raise ProofError("corollary 4-2 requires alpha != beta")
    phi = phi if phi is not None else Constraint.true(system.space)
    obligations = _check_preconditions(system, phi, need_autonomous=True)

    # One operation_flows matrix decides every per-operation obligation of
    # both alternatives; only the failing cells pay for a witness.
    engine = shared_engine(system)
    conclusion = f"not {alpha} |>_{phi.name} {beta}"
    try:
        step = engine.operation_flows(phi, budget)

        out_failures: list[Obligation] = []
        with obs.span("obligation.alternative_a", source=alpha):
            for m in system.space.names:
                if m == alpha:
                    continue
                for op in system.operations:
                    if (alpha, m) in step[op.name]:
                        result = engine.depends_history(
                            {alpha}, m, op, phi, budget
                        )
                        out_failures.append(
                            Obligation(
                                f"{alpha} |>^{op.name} {m} given {phi.name}",
                                False,
                                result.witness,
                            )
                        )
        alt_a = Obligation(
            f"(a) no operation transmits from {alpha} to any other object",
            not out_failures,
            out_failures[0].witness if out_failures else None,
        )

        in_failures: list[Obligation] = []
        with obs.span("obligation.alternative_b", target=beta):
            for m in system.space.names:
                if m == beta:
                    continue
                for op in system.operations:
                    if (m, beta) in step[op.name]:
                        result = engine.depends_history(
                            {m}, beta, op, phi, budget
                        )
                        in_failures.append(
                            Obligation(
                                f"{m} |>^{op.name} {beta} given {phi.name}",
                                False,
                                result.witness,
                            )
                        )
        alt_b = Obligation(
            f"(b) no operation transmits to {beta} from any other object",
            not in_failures,
            in_failures[0].witness if in_failures else None,
        )
    except BudgetExceededError as exc:
        obligations.append(_budget_obligation(exc))
        return Proof(conclusion=conclusion, obligations=tuple(obligations))

    alternatives = Obligation(
        "alternative (a) or alternative (b) holds",
        alt_a.ok or alt_b.ok,
        None if (alt_a.ok or alt_b.ok) else (alt_a.witness or alt_b.witness),
    )
    obligations.extend([alt_a, alt_b, alternatives])
    # The proof is valid iff preconditions hold and one alternative holds;
    # drop the individual failed alternative when the other succeeded, so
    # `valid` reflects the disjunction.
    final = tuple(
        ob
        for ob in obligations
        if ob.description not in (alt_a.description, alt_b.description)
        or ob.ok
        or not alternatives.ok
    )
    return Proof(conclusion=conclusion, obligations=final)


@obs.traced("induction.cor4_3")
def prove_via_relation(
    system: System,
    phi: Constraint | None,
    q: Callable[[str, str], bool],
    q_name: str = "q",
    budget: ExecutionBudget | None = None,
) -> Proof:
    """Corollary 4-3: if q is reflexive and transitive, phi autonomous and
    invariant, and every per-operation dependency implies q, then *every*
    dependency over any history implies q.

    This is the engine behind multilevel-security arguments: take
    ``q(x, y) = Cls(x) <= Cls(y)``.  Under a budget, an exhausted sweep
    yields an invalid proof with an UNKNOWN obligation.
    """
    phi = phi if phi is not None else Constraint.true(system.space)
    names = system.space.names
    obligations = _check_preconditions(system, phi, need_autonomous=True)

    reflexive = all(q(x, x) for x in names)
    obligations.append(Obligation(f"{q_name} is reflexive", reflexive))
    transitive_witness = None
    for x in names:
        for y in names:
            if not q(x, y):
                continue
            for z in names:
                if q(y, z) and not q(x, z):
                    transitive_witness = (x, y, z)
    obligations.append(
        Obligation(f"{q_name} is transitive", transitive_witness is None,
                   transitive_witness)
    )

    # The closure obligations are exactly the cells of the engine's
    # operation_flows matrix outside q: one bucket pass per source object
    # replaces |Delta| * n^2 per-triple transmits calls.
    engine = shared_engine(system)
    try:
        step = engine.operation_flows(phi, budget)
        with obs.span("obligation.relation_closure", relation=q_name):
            for op in system.operations:
                flows_op = step[op.name]
                for x in names:
                    for y in names:
                        if q(x, y):
                            continue
                        holds = (x, y) in flows_op
                        obligations.append(
                            Obligation(
                                f"not {x} |>^{op.name} {y} given {phi.name} "
                                f"(since not {q_name}({x},{y}))",
                                not holds,
                                engine.depends_history(
                                    {x}, y, op, phi, budget
                                ).witness
                                if holds
                                else None,
                            )
                        )
    except BudgetExceededError as exc:
        obligations.append(_budget_obligation(exc))
    return Proof(
        conclusion=(
            f"forall x,y,H: x |>_{phi.name}^H y  implies  {q_name}(x,y)"
        ),
        obligations=tuple(obligations),
    )


@obs.traced("induction.cor5_6")
def prove_no_dependency_nonautonomous(
    system: System,
    phi: Constraint | None,
    sources: Iterable[str],
    beta: str,
    budget: ExecutionBudget | None = None,
) -> Proof:
    """Corollary 5-6: the invariant (possibly non-autonomous) form.

    Requires phi invariant and ``beta not in A``; then it suffices that
    either (a) no operation transmits from A except into A itself, or
    (b) no operation transmits into beta from any set excluding beta —
    decided, by source-set monotonicity, with the single largest source
    set ``all objects - {beta}``.  Under a budget, an exhausted sweep
    yields an invalid proof with an UNKNOWN obligation.
    """
    phi = phi if phi is not None else Constraint.true(system.space)
    source_set = system.space.check_names(sources)
    if beta in source_set:
        raise ProofError("corollary 5-6 requires beta not in A")
    obligations = _check_preconditions(system, phi, need_autonomous=False)
    conclusion = f"not {sorted(source_set)} |>_{phi.name} {beta}"

    # Set-valued sources don't fit the singleton operation_flows matrix,
    # but the engine's batched fixed-history table answers every target m
    # of one (A, op, phi) from a single bucket sweep — the m-loop below is
    # |Delta| sweeps total, not |Delta| * n.
    engine = shared_engine(system)

    try:
        out_failures: list[Obligation] = []
        with obs.span("obligation.alternative_a", sources=",".join(sorted(source_set))):
            for m in system.space.names:
                if m in source_set:
                    continue
                for op in system.operations:
                    result = engine.depends_history(source_set, m, op, phi, budget)
                    if result:
                        out_failures.append(
                            Obligation(
                                f"A |>^{op.name} {m} given {phi.name}",
                                False,
                                result.witness,
                            )
                        )
        alt_a = Obligation(
            "(a) no operation transmits from A to any object outside A",
            not out_failures,
            out_failures[0].witness if out_failures else None,
        )

        everything_else = frozenset(system.space.names) - {beta}
        in_failure: Witness | None = None
        with obs.span("obligation.alternative_b", target=beta):
            if everything_else:
                for op in system.operations:
                    result = engine.depends_history(
                        everything_else, beta, op, phi, budget
                    )
                    if result:
                        in_failure = result.witness
                        break
        alt_b = Obligation(
            f"(b) no operation transmits to {beta} from outside {{{beta}}}",
            in_failure is None,
            in_failure,
        )
    except BudgetExceededError as exc:
        obligations.append(_budget_obligation(exc))
        return Proof(conclusion=conclusion, obligations=tuple(obligations))

    alternatives = Obligation(
        "alternative (a) or alternative (b) holds", alt_a.ok or alt_b.ok
    )
    obligations.extend(
        ob for ob in (alt_a, alt_b) if ob.ok or not alternatives.ok
    )
    obligations.append(alternatives)
    return Proof(conclusion=conclusion, obligations=tuple(obligations))


def intermediate_objects(
    witness: Witness, prefix: History
) -> frozenset[str]:
    """Theorem 5-5's intermediate set ``M = {m | H(s1).m != H(s2).m}`` for a
    split of the witness history at ``prefix``."""
    s1 = prefix(witness.sigma1)
    s2 = prefix(witness.sigma2)
    return s1.differs_at(s2)


@dataclass(frozen=True)
class Decomposition:
    """A Theorem 4-1 / 5-4 decomposition of a dependency over ``H Hprime``.

    ``A |>_phi^H M`` and ``M |>_{phi'}^{Hprime} beta`` where ``phi'`` is
    phi itself for invariant constraints (Theorem 5-4) or ``[H]phi``
    (Theorem 6-3).
    """

    sources: frozenset[str]
    intermediates: frozenset[str]
    target: str
    prefix: History
    suffix: History
    first_leg: DependencyResult
    second_leg: DependencyResult


def decompose_dependency(
    system: System,
    phi: Constraint | None,
    witness: Witness,
    split_at: int,
    target: str,
    invariant: bool = True,
) -> Decomposition:
    """Split a concrete dependency witness at position ``split_at`` of its
    history and return the Theorem 5-4 (invariant) or Theorem 6-3
    (non-invariant: second leg constrained by ``[H]phi``) decomposition.

    Raises :class:`ProofError` if either leg unexpectedly fails — which the
    theorems guarantee cannot happen, so a raise here indicates a modelling
    error (e.g. phi not actually invariant when ``invariant=True``).
    """
    phi = phi if phi is not None else Constraint.true(system.space)
    prefix = witness.history[:split_at]
    suffix = witness.history[split_at:]
    middle = intermediate_objects(witness, prefix)
    if not middle:
        raise ProofError(
            "witness states agree after the prefix; no intermediate set "
            "(the dependency cannot survive this split)"
        )
    first = transmits_to_set(system, witness.sources, middle, prefix, phi)
    second_phi = phi if invariant else phi.after(prefix)
    second = transmits(system, middle, target, suffix, second_phi)
    if not first or not second:
        raise ProofError(
            "decomposition legs failed; check invariance/autonomy of phi"
        )
    return Decomposition(
        sources=witness.sources,
        intermediates=middle,
        target=target,
        prefix=prefix,
        suffix=suffix,
        first_leg=first,
        second_leg=second,
    )


def find_intermediate(
    system: System,
    phi: Constraint | None,
    alpha: str,
    beta: str,
    prefix: History,
    suffix: History,
) -> tuple[str, DependencyResult, DependencyResult] | None:
    """Theorem 4-1 search: given ``alpha |>_phi^{H H'} beta`` with phi
    autonomous and invariant, find a single object m with
    ``alpha |>_phi^H m`` and ``m |>_phi^{H'} beta``.  Returns None if the
    composite dependency does not hold at all."""
    phi = phi if phi is not None else Constraint.true(system.space)
    composite = transmits(system, {alpha}, beta, prefix + suffix, phi)
    if not composite:
        return None
    for m in system.space.names:
        first = transmits(system, {alpha}, m, prefix, phi)
        if not first:
            continue
        second = transmits(system, {m}, beta, suffix, phi)
        if second:
            return (m, first, second)
    raise ProofError(
        "Theorem 4-1 violated: no intermediate object found "
        "(is phi autonomous and invariant?)"
    )
