"""Exact existential-history dependency via pair-graph reachability.

``A |>_phi beta`` (Def 2-11) asks whether *some* history transmits — a
quantifier over the infinitely many histories.  For a finite system it is
nevertheless decidable: run the two experiment states in lockstep.

Consider the product graph whose nodes are ordered state pairs
``(s1, s2)`` and whose edges apply one operation to both components::

    (s1, s2)  --delta-->  (delta(s1), delta(s2))

Initial nodes are the Def 2-8 pairs: both satisfy phi and are equal except
at A.  Then ``A |>_phi beta`` holds iff some node with ``s1.beta != s2.beta``
is reachable — and the edge labels along the path *are* the witness history.

The node set is finite (at most ``|Sigma|^2``), so breadth-first search
decides the property exactly and yields a shortest witness.  This is the
library's replacement for the paper's per-proof reasoning about "all
histories", and the backbone of the Worth measure and the problem solvers.

The public functions here are thin wrappers over the shared
:class:`repro.core.engine.DependencyEngine`, which computes the reachable
pair set **once per (A, phi)** — it is target-independent — and answers
every target from that closure.  The original per-query BFS is kept as
``_seed_depends_ever``/``_seed_depends_ever_set``: it is the executable
specification the engine-agreement property tests and the A3 benchmark
compare against.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.core.budget import ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.dependency import DependencyResult, Witness
from repro.core.engine import shared_engine
from repro.core.errors import ConstraintError
from repro.core.state import State
from repro.core.system import History, System


def _initial_pairs(
    system: System,
    sources: frozenset[str],
    phi: Constraint,
) -> Iterable[tuple[State, State]]:
    """Def 2-8 pairs: phi-states equal except at the source set.

    Pairs are generated unordered-deduplicated (s1 before s2 in enumeration
    order) — dependency is symmetric in the pair.
    """
    buckets: dict[tuple, list[State]] = {}
    for state in phi.states():
        buckets.setdefault(state.restrict_away(sources), []).append(state)
    for bucket in buckets.values():
        for i, s1 in enumerate(bucket):
            for s2 in bucket[i + 1 :]:
                yield (s1, s2)


def depends_ever(
    system: System,
    sources: Iterable[str],
    target: str,
    constraint: Constraint | None = None,
    budget: ExecutionBudget | None = None,
) -> DependencyResult:
    """Decide ``A |>_phi beta`` (Def 2-7/2-11) *exactly* — over all
    histories of any length — by pair-graph BFS.

    A positive result carries a shortest witness history and the state
    pair.  Delegates to the shared :class:`~repro.core.engine.DependencyEngine`,
    so repeated queries against the same ``(A, phi)`` reuse one closure.
    Under an :class:`~repro.core.budget.ExecutionBudget` the BFS is
    governed and may raise
    :class:`~repro.core.budget.BudgetExceededError` instead of answering.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("a", "m", "b")
    >>> _ = b.op_assign("d1", "m", var("a")).op_assign("d2", "b", var("m"))
    >>> system = b.build()
    >>> result = depends_ever(system, {"a"}, "b")
    >>> bool(result), len(result.witness.history)
    (True, 2)
    """
    return shared_engine(system).depends_ever(sources, target, constraint, budget)


def depends_ever_set(
    system: System,
    sources: Iterable[str],
    targets: Iterable[str],
    constraint: Constraint | None = None,
    budget: ExecutionBudget | None = None,
) -> DependencyResult:
    """Exact ``A |>_phi B`` for a set target (Def 5-7): some reachable pair
    differs at *every* object of B.  Answered from the same shared
    per-``(A, phi)`` closure as :func:`depends_ever`."""
    return shared_engine(system).depends_ever_set(
        sources, targets, constraint, budget
    )


def dependency_closure(
    system: System,
    constraint: Constraint | None = None,
    sources: Iterable[frozenset[str]] | None = None,
    budget: ExecutionBudget | None = None,
) -> dict[tuple[frozenset[str], str], DependencyResult]:
    """All exact existential-history dependencies for a family of source
    sets (default: singletons) against every target — i.e. the paper's
    ``Worth`` raw data (section 3.6) computed exactly, one BFS per source
    set rather than one per (source, target) cell."""
    return shared_engine(system).closure(constraint, sources, budget=budget)


# -- seed reference implementations ------------------------------------------
#
# The pre-engine per-query BFS, kept verbatim as the executable
# specification: tests/property/test_engine_agreement.py asserts the engine
# matches it query-for-query, and benchmarks/test_a3_engine.py measures the
# speedup against it.


def _seed_depends_ever(
    system: System,
    sources: Iterable[str],
    target: str,
    constraint: Constraint | None = None,
) -> DependencyResult:
    """Reference: one full BFS per (A, phi, beta) query."""
    source_set = system.space.check_names(sources)
    system.space.check_names([target])
    phi = constraint if constraint is not None else Constraint.true(system.space)
    if phi.space != system.space:
        raise ConstraintError("constraint and system are over different spaces")

    # BFS with parent pointers so the witness history can be reconstructed.
    parents: dict[tuple[State, State], tuple[tuple[State, State], str] | None] = {}
    queue: deque[tuple[State, State]] = deque()
    for pair in _initial_pairs(system, source_set, phi):
        if pair not in parents:
            parents[pair] = None
            queue.append(pair)

    def reconstruct(pair: tuple[State, State]) -> Witness:
        ops: list[str] = []
        cursor: tuple[State, State] = pair
        while True:
            parent = parents[cursor]
            if parent is None:
                break
            cursor, op_name = parent
            ops.append(op_name)
        ops.reverse()
        history = History(system.operation(name) for name in ops)
        return Witness(
            sources=source_set,
            targets=frozenset([target]),
            history=history,
            sigma1=cursor[0],
            sigma2=cursor[1],
        )

    while queue:
        pair = queue.popleft()
        s1, s2 = pair
        if s1[target] != s2[target]:
            witness = reconstruct(pair)
            return DependencyResult(
                True, source_set, frozenset([target]), phi.name, witness
            )
        for op in system.operations:
            successor = (op(s1), op(s2))
            if successor not in parents:
                parents[successor] = (pair, op.name)
                queue.append(successor)
    return DependencyResult(False, source_set, frozenset([target]), phi.name)


def _seed_depends_ever_set(
    system: System,
    sources: Iterable[str],
    targets: Iterable[str],
    constraint: Constraint | None = None,
) -> DependencyResult:
    """Reference: one full BFS per (A, phi, B) set-target query."""
    source_set = system.space.check_names(sources)
    target_set = system.space.check_names(targets)
    if not target_set:
        raise ConstraintError("target set B must be non-empty")
    phi = constraint if constraint is not None else Constraint.true(system.space)

    target_list = sorted(target_set)
    parents: dict[tuple[State, State], tuple[tuple[State, State], str] | None] = {}
    queue: deque[tuple[State, State]] = deque()
    for pair in _initial_pairs(system, source_set, phi):
        if pair not in parents:
            parents[pair] = None
            queue.append(pair)

    while queue:
        pair = queue.popleft()
        s1, s2 = pair
        if all(s1[t] != s2[t] for t in target_list):
            ops: list[str] = []
            cursor = pair
            while parents[cursor] is not None:
                cursor, op_name = parents[cursor]  # type: ignore[misc]
                ops.append(op_name)
            ops.reverse()
            witness = Witness(
                sources=source_set,
                targets=target_set,
                history=History(system.operation(n) for n in ops),
                sigma1=cursor[0],
                sigma2=cursor[1],
            )
            return DependencyResult(True, source_set, target_set, phi.name, witness)
        for op in system.operations:
            successor = (op(s1), op(s2))
            if successor not in parents:
                parents[successor] = (pair, op.name)
                queue.append(successor)
    return DependencyResult(False, source_set, target_set, phi.name)


def _seed_dependency_closure(
    system: System,
    constraint: Constraint | None = None,
    sources: Iterable[frozenset[str]] | None = None,
) -> dict[tuple[frozenset[str], str], DependencyResult]:
    """Reference: the pre-engine closure — an independent BFS per cell."""
    if sources is None:
        source_family: list[frozenset[str]] = [
            frozenset([n]) for n in system.space.names
        ]
    else:
        source_family = [frozenset(a) for a in sources]
    out: dict[tuple[frozenset[str], str], DependencyResult] = {}
    for source in source_family:
        for target in system.space.names:
            out[(source, target)] = _seed_depends_ever(
                system, source, target, constraint
            )
    return out
