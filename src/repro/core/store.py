"""Disk-backed persistent memo store: warm starts across processes.

PR 6 made the *first* computation of a closure ~11x faster; this module
makes the *second* computation — in a new CLI run, a restarted service,
or a pool of cooperating processes — a single row fetch.  Three memo
families from the dependency stack persist to one sqlite file
(stdlib-only, WAL-journaled):

* **closures** — the per-``(A, phi)`` canonical-pair BFS results
  (``order`` as packed ``array('L')`` bytes, parents as order-aligned
  int64 bytes), plus each closure's *touched-states bitset*;
* **history_tables** — the Def 1-1 sweep tables of
  :meth:`DependencyEngine._history_table`;
* **buckets** — the Def 1-1 partitions themselves.

**Canonical system hashing.**  Rows are keyed by a content hash of the
compiled system: the object names, domain sizes and operation names,
plus one sha256 per operation over its flat successor table in a
canonical little-endian 8-byte encoding (:func:`system_hash`,
:func:`delta_hash`).  Two systems whose compiled tables are identical —
however their lambdas are spelled — share every memo; any behavioural
change to any operation re-keys the store.  Constraints are keyed the
same way, by the hash of their satisfying-id array (:func:`sat_key`),
so equal-but-distinct :class:`~repro.core.constraints.Constraint`
instances share disk entries even though they cannot share RAM entries.

**Incremental invalidation.**  Each stored closure carries the bitset
of state ids its BFS actually read (every operation's successor table
is consulted exactly at the components of reached pairs —
:meth:`CompiledClosure.touched_states`).  When one operation's delta
changes, only the closures whose touched set intersects the changed
entries are invalid; the rest replay *bit-identically* under the new
system — same order, parents, and witnesses — and
:func:`repro.analysis.diff.diff_systems` carries them across to the new
system hash instead of recomputing (soundness argument in
docs/FORMALISM.md, "Persistent memoization").

**Soundness posture.**  Content-hash keying means a stored row is never
*wrong* — at worst it is for a system nobody asks about again.  Partial
results never persist: budget trips raise before the engine's
memoization point, so only complete closures reach :meth:`save_closure`
(see :mod:`repro.core.budget`).  And the store is an accelerator, not a
dependency: any sqlite-level failure — a truncated file, a foreign
schema version, a concurrent writer holding the lock past the busy
timeout — *degrades* the store to the in-memory path (``store.degraded``
counter + one :class:`RuntimeWarning`), never an exception to the
caller.  Concurrent processes sharing one store coordinate through WAL
journaling and a busy timeout.

The on-disk payload is bounded (``max_bytes`` /
``REPRO_STORE_MAX_BYTES``) with LRU-by-last-access eviction across the
three payload tables, accounted by the shared
:class:`~repro.core.cache.ByteMeter` policy; the ``systems`` table
(kernels) is exempt — it is what makes every other row decodable.

Blobs use the platform's native int width/endianness (the store is a
same-machine cache, not an interchange format); the *hash* is computed
over the canonical little-endian encoding, so ids agree across
architectures even though blobs would not.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import sys
import threading
import time
import warnings
from array import array
from collections.abc import Iterable, Mapping, Sequence

from repro import obs
from repro.core import bitset
from repro.core.cache import ByteMeter
from repro.core.compiled import CompiledKernel

#: Version of the on-disk layout.  A file written by any other version
#: degrades soundly to the in-memory path instead of being misread.
SCHEMA_VERSION = 1

#: Environment variables: default store path (the CLI's ``--store``
#: fallback) and the byte bound on the payload tables.
ENV_STORE = "REPRO_STORE"
ENV_MAX_BYTES = "REPRO_STORE_MAX_BYTES"

#: How long a connection waits on a concurrent writer before giving up
#: (and degrading) instead of deadlocking.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS systems (
    hash TEXT PRIMARY KEY,
    n INTEGER NOT NULL,
    names TEXT NOT NULL,
    sizes TEXT NOT NULL,
    op_names TEXT NOT NULL,
    op_hashes TEXT NOT NULL,
    successors BLOB NOT NULL,
    created REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS closures (
    system_hash TEXT NOT NULL,
    sources TEXT NOT NULL,
    constraint_key TEXT NOT NULL,
    kernel_path TEXT NOT NULL,
    n_pairs INTEGER NOT NULL,
    order_blob BLOB NOT NULL,
    parents_blob BLOB NOT NULL,
    touched BLOB NOT NULL,
    first_diff TEXT,
    parent_index BLOB,
    nbytes INTEGER NOT NULL,
    last_access REAL NOT NULL,
    PRIMARY KEY (system_hash, sources, constraint_key)
);
CREATE TABLE IF NOT EXISTS history_tables (
    system_hash TEXT NOT NULL,
    sources TEXT NOT NULL,
    op_indices TEXT NOT NULL,
    constraint_key TEXT NOT NULL,
    table_json TEXT NOT NULL,
    nbytes INTEGER NOT NULL,
    last_access REAL NOT NULL,
    PRIMARY KEY (system_hash, sources, op_indices, constraint_key)
);
CREATE TABLE IF NOT EXISTS buckets (
    system_hash TEXT NOT NULL,
    source_indices TEXT NOT NULL,
    constraint_key TEXT NOT NULL,
    members BLOB NOT NULL,
    nbytes INTEGER NOT NULL,
    last_access REAL NOT NULL,
    PRIMARY KEY (system_hash, source_indices, constraint_key)
);
CREATE TABLE IF NOT EXISTS composed (
    system_hash TEXT NOT NULL,
    op_indices TEXT NOT NULL,
    comp BLOB NOT NULL,
    nbytes INTEGER NOT NULL,
    last_access REAL NOT NULL,
    PRIMARY KEY (system_hash, op_indices)
);
"""

#: The tables the byte budget governs (``systems`` is exempt).
_PAYLOAD_TABLES = ("closures", "history_tables", "buckets", "composed")


# -- canonical hashing --------------------------------------------------------


def _table_bytes(table) -> bytes:
    """One flat id table in the canonical encoding hashes are computed
    over: unsigned 8-byte little-endian.  ``table`` is any iterable of
    non-negative ints (``array('L')``, shared-memory memoryview, list)."""
    arr = table if isinstance(table, array) and table.itemsize == 8 else array(
        "Q", table
    )
    if sys.byteorder != "little":
        arr = arr[:]
        arr.byteswap()
    return arr.tobytes()


def delta_hash(table) -> str:
    """The per-operation content hash: sha256 of the operation's flat
    successor table in canonical encoding.  Equal tables — however the
    operation was written — hash equal."""
    return hashlib.sha256(_table_bytes(table)).hexdigest()[:16]


def system_hash(kernel: CompiledKernel) -> str:
    """The canonical content hash of a compiled system: its shape
    (names, domain sizes, operation names) plus every operation's
    :func:`delta_hash`.  This is the store's primary key — computing it
    requires compiling (each operation runs once per state), so warm
    starts skip the BFS, not the compile; callers that know the hash
    already can skip the compile too via :meth:`PersistentStore.load_kernel`.
    """
    header = json.dumps(
        {
            "names": list(kernel.names),
            "sizes": list(kernel.sizes),
            "ops": list(kernel.op_names),
            "deltas": [delta_hash(table) for table in kernel.successors],
        },
        separators=(",", ":"),
    )
    return hashlib.sha256(header.encode("ascii")).hexdigest()[:32]


def sat_key(sat_ids) -> str:
    """The content key of a resolved constraint: ``"*"`` for the
    unconstrained fast path (``None`` — any trivially-true instance),
    else the hash of the satisfying-id array.  Semantically equal
    constraints share one key even as distinct instances."""
    if sat_ids is None:
        return "*"
    return hashlib.sha256(_table_bytes(sat_ids)).hexdigest()[:16]


def _sources_key(sources: Iterable[str]) -> str:
    return json.dumps(sorted(sources), separators=(",", ":"))


def _indices_key(indices: Sequence[int]) -> str:
    return json.dumps(list(indices), separators=(",", ":"))


# -- state bitsets ------------------------------------------------------------


def bitset_intersects(a: bytes, b: bytes) -> bool:
    """Whether two little-endian state bitsets share a set bit — the
    survival test of delta invalidation (touched ∩ changed)."""
    return bool(int.from_bytes(a, "little") & int.from_bytes(b, "little"))


def bitset_count(a: bytes) -> int:
    return int.from_bytes(a, "little").bit_count()


def changed_state_bitset(n: int, old_tables, new_tables, indices=None) -> bytes:
    """The states where any (selected) operation's successor entry
    differs between two compiled systems, as a little-endian bitset —
    the ``changed`` half of the invalidation test."""
    if indices is None:
        indices = range(min(len(old_tables), len(new_tables)))
    np = bitset.load_numpy()
    if np is not None:
        mask = np.zeros(n, dtype=bool)
        for d in indices:
            a = np.frombuffer(_table_bytes(old_tables[d]), dtype=np.uint64)
            b = np.frombuffer(_table_bytes(new_tables[d]), dtype=np.uint64)
            mask |= a != b
        return np.packbits(mask, bitorder="little").tobytes()
    out = bytearray((n + 7) >> 3)
    for d in indices:
        a = old_tables[d]
        b = new_tables[d]
        for i in range(n):
            if a[i] != b[i]:
                out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def changed_op_indices(old_tables, new_tables) -> list[int]:
    """Operations (by index) whose successor tables differ."""
    return [
        d
        for d in range(min(len(old_tables), len(new_tables)))
        if _table_bytes(old_tables[d]) != _table_bytes(new_tables[d])
    ]


# -- closure serialization ----------------------------------------------------


def _parents_blob(order, parents: Mapping[int, int]) -> bytes:
    """Parent pointers packed order-aligned as native int64 bytes.  The
    bulk kernel's :class:`~repro.core.bitset.PackedParents` is already
    order-aligned; the scalar dict's insertion order *is* the BFS order,
    but the explicit per-code lookup keeps this correct for any Mapping.
    """
    if isinstance(parents, bitset.PackedParents):
        return parents.packed_bytes()
    return array("q", (parents[code] for code in order)).tobytes()


def _decode_order(blob: bytes) -> array:
    arr = array("L")
    arr.frombytes(blob)
    return arr


def _decode_parents(order: array, blob: bytes):
    """The mapping back: :class:`~repro.core.bitset.PackedParents` over
    the two arrays when NumPy is importable (no per-entry Python ints),
    a plain dict otherwise — both byte-identical in content to what was
    stored."""
    np = bitset.load_numpy()
    if np is not None:
        codes = np.frombuffer(order, dtype=np.uint64).astype(np.int64, copy=False)
        packed = np.frombuffer(blob, dtype=np.int64)
        return bitset.PackedParents(codes, packed)
    packed = array("q")
    packed.frombytes(blob)
    return dict(zip(order, packed))


def _decode_first_diff(text) -> dict | None:
    """The stored first-differing scan back as ``{name: pair_code}``, or
    ``None`` when absent/malformed (the closure then just re-scans)."""
    if not text:
        return None
    try:
        decoded = json.loads(text)
    except ValueError:
        return None
    if not isinstance(decoded, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in decoded.items()
    ):
        return None
    return decoded


def _pack_buckets(buckets: Sequence[Sequence[int]]) -> bytes:
    flat = array("L", [len(buckets)])
    for bucket in buckets:
        flat.append(len(bucket))
        flat.extend(bucket)
    return flat.tobytes()


def _unpack_buckets(blob: bytes) -> list[list[int]]:
    flat = array("L")
    flat.frombytes(blob)
    count = flat[0]
    out: list[list[int]] = []
    pos = 1
    for _ in range(count):
        size = flat[pos]
        pos += 1
        out.append(list(flat[pos : pos + size]))
        pos += size
    if pos != len(flat):
        raise ValueError("bucket blob length mismatch")
    return out


# -- the store ----------------------------------------------------------------


class PersistentStore:
    """One sqlite-backed memo store, shared by any number of engines
    (and, through WAL + busy timeout, any number of processes).

    All methods are miss-tolerant by contract: after any sqlite-level
    failure the store flips to *degraded* (``store.degraded`` counter +
    one warning) and every later call is a cheap no-op miss — engines
    keep computing exactly as if no store were attached.
    """

    def __init__(self, path: str | os.PathLike, max_bytes: int | None = None) -> None:
        self.path = os.fspath(path)
        if max_bytes is None:
            env = os.environ.get(ENV_MAX_BYTES)
            max_bytes = int(env) if env else None
        self.meter = ByteMeter(max_bytes, "store.evictions")
        self.degraded = False
        self.degraded_reason: str | None = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._conn: sqlite3.Connection | None = None
        self._lock = threading.RLock()

    @classmethod
    def coerce(
        cls, store: "PersistentStore | str | os.PathLike | None"
    ) -> "PersistentStore | None":
        """``None`` passes through, an existing store passes through, a
        path opens one — the engine/CLI/diff argument convention."""
        if store is None or isinstance(store, PersistentStore):
            return store
        return cls(store)

    # -- connection lifecycle -------------------------------------------------

    def _degrade(self, reason: str, exc: BaseException | None = None) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degraded_reason = f"{reason}: {exc}" if exc is not None else reason
        obs.count("store.degraded")
        warnings.warn(
            f"persistent store {self.path!r} degraded to the in-memory path "
            f"({self.degraded_reason})",
            RuntimeWarning,
            stacklevel=4,
        )
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def _connect(self) -> sqlite3.Connection | None:
        """The lazily opened connection, or ``None`` once degraded.
        Opening validates the schema version: a file written by a
        different layout degrades instead of being misread."""
        if self.degraded:
            return None
        if self._conn is not None:
            return self._conn
        try:
            conn = sqlite3.connect(
                self.path,
                timeout=BUSY_TIMEOUT_MS / 1000,
                check_same_thread=False,
            )
            conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                conn.commit()
            elif row[0] != str(SCHEMA_VERSION):
                conn.close()
                self._degrade(
                    f"schema version mismatch (file {row[0]}, "
                    f"expected {SCHEMA_VERSION})"
                )
                return None
        except sqlite3.Error as exc:
            self._degrade("sqlite open failed", exc)
            return None
        self._conn = conn
        return conn

    def close(self) -> None:
        with self._lock:
            conn, self._conn = self._conn, None
            if conn is not None:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass

    def __enter__(self) -> "PersistentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _bump_meta(self, conn: sqlite3.Connection, key: str, by: int = 1) -> None:
        """Lifetime counters (hits/misses/writes/evictions across every
        process that ever used this file) live in the meta table."""
        conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET "
            "value = CAST(CAST(value AS INTEGER) + ? AS TEXT)",
            (key, str(by), by),
        )

    def _miss(self, conn: sqlite3.Connection | None) -> None:
        self.misses += 1
        obs.count("store.miss")
        if conn is not None:
            self._bump_meta(conn, "misses")
            conn.commit()

    def _hit(self, conn: sqlite3.Connection) -> None:
        self.hits += 1
        obs.count("store.hit")
        self._bump_meta(conn, "hits")

    # -- systems --------------------------------------------------------------

    def register_system(self, kernel: CompiledKernel) -> str | None:
        """Ensure the kernel's tables are on disk and return its
        canonical hash — the key every other method takes.  Returns
        ``None`` when degraded (callers then skip the store entirely)."""
        with self._lock:
            conn = self._connect()
            if conn is None:
                return None
            h = system_hash(kernel)
            try:
                row = conn.execute(
                    "SELECT 1 FROM systems WHERE hash=?", (h,)
                ).fetchone()
                if row is None:
                    conn.execute(
                        "INSERT OR IGNORE INTO systems "
                        "(hash, n, names, sizes, op_names, op_hashes, "
                        " successors, created) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            h,
                            kernel.n,
                            json.dumps(list(kernel.names)),
                            json.dumps(list(kernel.sizes)),
                            json.dumps(list(kernel.op_names)),
                            json.dumps(
                                [delta_hash(t) for t in kernel.successors]
                            ),
                            b"".join(_table_bytes(t) for t in kernel.successors),
                            time.time(),
                        ),
                    )
                    self.writes += 1
                    obs.count("store.write")
                    self._bump_meta(conn, "writes")
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("register_system failed", exc)
                return None
            return h

    def load_kernel(self, h: str) -> CompiledKernel | None:
        """Rebuild a :class:`~repro.core.compiled.CompiledKernel` from
        its stored tables — no operation executes.  This is the warm
        path for callers that already know the hash (a restarted service,
        :meth:`repro.core.shm.KernelArena.from_store`); pair it with
        ``CompiledSystem(system, kernel=...)`` or an arena."""
        with self._lock:
            conn = self._connect()
            if conn is None:
                return None
            try:
                row = conn.execute(
                    "SELECT n, names, sizes, op_names, successors "
                    "FROM systems WHERE hash=?",
                    (h,),
                ).fetchone()
            except sqlite3.Error as exc:
                self._degrade("load_kernel failed", exc)
                return None
        if row is None:
            return None
        n, names_json, sizes_json, ops_json, blob = row
        names = tuple(json.loads(names_json))
        sizes = tuple(json.loads(sizes_json))
        op_names = tuple(json.loads(ops_json))
        try:
            if len(blob) != 8 * n * len(op_names):
                raise ValueError("successor blob length mismatch")
            successors = []
            for d in range(len(op_names)):
                arr = array("L")
                arr.frombytes(blob[8 * n * d : 8 * n * (d + 1)])
                if sys.byteorder != "little":
                    arr.byteswap()
                successors.append(arr)
        except ValueError:
            obs.count("store.corrupt")
            return None
        strides_rev: list[int] = []
        acc = 1
        for size in reversed(sizes):
            strides_rev.append(acc)
            acc *= size
        strides = tuple(reversed(strides_rev))
        columns = tuple(
            array("L", ((i // stride) % size for i in range(n)))
            for stride, size in zip(strides, sizes)
        )
        obs.count("store.kernel_loads")
        return CompiledKernel(
            n, names, sizes, strides, columns, op_names, tuple(successors)
        )

    # -- closures -------------------------------------------------------------

    def save_closure(self, h: str, constraint_key: str, closure) -> None:
        """Persist one complete :class:`CompiledClosure` (first writer
        wins, like the engine's ``setdefault`` memo).  The engine only
        calls this after its memoization point, which budget trips raise
        past — partial results can never reach here."""
        order = closure.order
        order_blob = order.tobytes()
        parents_blob = _parents_blob(order, closure.parents)
        touched = closure.touched_states()
        # Two derived artifacts ride along so a warm start replays
        # queries without re-deriving them: the Def 5-5 first-differing
        # scan and the packed-parents sorted index.  Both are pure
        # functions of the closure (content-hash keying keeps them
        # correct) and both are work the *saving* process does anyway on
        # its first query — forcing them here just moves that work in
        # front of the persist.
        first_diff = json.dumps(closure.first_differing(), sort_keys=True)
        parents = closure.parents
        index_blob = (
            parents.index_bytes()
            if isinstance(parents, bitset.PackedParents)
            else None
        )
        nbytes = (
            len(order_blob)
            + len(parents_blob)
            + len(touched)
            + len(first_diff)
            + (len(index_blob) if index_blob is not None else 0)
        )
        with self._lock:
            conn = self._connect()
            if conn is None:
                return
            try:
                with obs.span("store.save", kind="closure"):
                    conn.execute(
                        "INSERT OR IGNORE INTO closures "
                        "(system_hash, sources, constraint_key, kernel_path, "
                        " n_pairs, order_blob, parents_blob, touched, "
                        " first_diff, parent_index, nbytes, last_access) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            h,
                            _sources_key(closure.sources),
                            constraint_key,
                            closure.kernel_path,
                            len(order),
                            order_blob,
                            parents_blob,
                            touched,
                            first_diff,
                            index_blob,
                            nbytes,
                            time.time(),
                        ),
                    )
                    self.writes += 1
                    obs.count("store.write")
                    self._bump_meta(conn, "writes")
                    self._enforce_budget(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("save_closure failed", exc)

    def load_closure(
        self, h: str, sources: Iterable[str], constraint_key: str
    ) -> tuple[str, array, Mapping[int, int], bytes, dict | None] | None:
        """One row fetch instead of a BFS: ``(kernel_path, order,
        parents, touched, first_diff)`` for ``(A, phi)`` under system
        ``h``, or ``None``.  A structurally corrupt row is deleted and
        counted (``store.corrupt``), then treated as a miss — the engine
        just recomputes.  The two derived columns are best-effort: a
        missing or malformed ``first_diff``/``parent_index`` degrades to
        lazy recomputation, never to a miss."""
        key = (h, _sources_key(sources), constraint_key)
        with self._lock:
            conn = self._connect()
            if conn is None:
                self._miss(None)
                return None
            try:
                with obs.span("store.load", kind="closure"):
                    row = conn.execute(
                        "SELECT kernel_path, n_pairs, order_blob, "
                        "parents_blob, touched, first_diff, parent_index "
                        "FROM closures "
                        "WHERE system_hash=? AND sources=? AND constraint_key=?",
                        key,
                    ).fetchone()
                    if row is None:
                        self._miss(conn)
                        return None
                    (
                        kernel_path,
                        n_pairs,
                        order_blob,
                        parents_blob,
                        touched,
                        first_diff_json,
                        index_blob,
                    ) = row
                    if (
                        len(order_blob) != 8 * n_pairs
                        or len(parents_blob) != 8 * n_pairs
                    ):
                        obs.count("store.corrupt")
                        conn.execute(
                            "DELETE FROM closures WHERE system_hash=? "
                            "AND sources=? AND constraint_key=?",
                            key,
                        )
                        self._miss(conn)
                        return None
                    conn.execute(
                        "UPDATE closures SET last_access=? WHERE system_hash=? "
                        "AND sources=? AND constraint_key=?",
                        (time.time(), *key),
                    )
                    self._hit(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("load_closure failed", exc)
                return None
        order = _decode_order(order_blob)
        parents = _decode_parents(order, parents_blob)
        if index_blob is not None and isinstance(parents, bitset.PackedParents):
            try:
                parents.preload_index(index_blob)
            except (ValueError, TypeError):
                pass  # fall back to the lazy argsort
        first_diff = _decode_first_diff(first_diff_json)
        return kernel_path, order, parents, touched, first_diff

    def closure_rows(
        self, h: str
    ) -> list[tuple[str, str, bytes]]:
        """Every stored closure key for system ``h`` with its touched
        bitset — ``(sources_json, constraint_key, touched)`` — the
        inventory ``repro diff`` sweeps for survivors."""
        with self._lock:
            conn = self._connect()
            if conn is None:
                return []
            try:
                return list(
                    conn.execute(
                        "SELECT sources, constraint_key, touched "
                        "FROM closures WHERE system_hash=?",
                        (h,),
                    )
                )
            except sqlite3.Error as exc:
                self._degrade("closure_rows failed", exc)
                return []

    # -- history tables -------------------------------------------------------

    def save_history_table(
        self,
        h: str,
        sources: Iterable[str],
        op_indices: Sequence[int],
        constraint_key: str,
        table: Mapping[str, tuple[int, int]],
    ) -> None:
        payload = json.dumps(
            {name: list(pair) for name, pair in table.items()},
            separators=(",", ":"),
        )
        with self._lock:
            conn = self._connect()
            if conn is None:
                return
            try:
                with obs.span("store.save", kind="history_table"):
                    conn.execute(
                        "INSERT OR IGNORE INTO history_tables "
                        "(system_hash, sources, op_indices, constraint_key, "
                        " table_json, nbytes, last_access) "
                        "VALUES (?, ?, ?, ?, ?, ?, ?)",
                        (
                            h,
                            _sources_key(sources),
                            _indices_key(op_indices),
                            constraint_key,
                            payload,
                            len(payload),
                            time.time(),
                        ),
                    )
                    self.writes += 1
                    obs.count("store.write")
                    self._bump_meta(conn, "writes")
                    self._enforce_budget(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("save_history_table failed", exc)

    def load_history_table(
        self,
        h: str,
        sources: Iterable[str],
        op_indices: Sequence[int],
        constraint_key: str,
    ) -> dict[str, tuple[int, int]] | None:
        key = (h, _sources_key(sources), _indices_key(op_indices), constraint_key)
        with self._lock:
            conn = self._connect()
            if conn is None:
                self._miss(None)
                return None
            try:
                with obs.span("store.load", kind="history_table"):
                    row = conn.execute(
                        "SELECT table_json FROM history_tables "
                        "WHERE system_hash=? AND sources=? AND op_indices=? "
                        "AND constraint_key=?",
                        key,
                    ).fetchone()
                    if row is None:
                        self._miss(conn)
                        return None
                    conn.execute(
                        "UPDATE history_tables SET last_access=? "
                        "WHERE system_hash=? AND sources=? AND op_indices=? "
                        "AND constraint_key=?",
                        (time.time(), *key),
                    )
                    self._hit(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("load_history_table failed", exc)
                return None
        try:
            decoded = json.loads(row[0])
            return {name: (pair[0], pair[1]) for name, pair in decoded.items()}
        except (ValueError, TypeError, IndexError):
            obs.count("store.corrupt")
            return None

    # -- Def 1-1 buckets ------------------------------------------------------

    def save_buckets(
        self,
        h: str,
        source_indices: Sequence[int],
        constraint_key: str,
        buckets: Sequence[Sequence[int]],
    ) -> None:
        blob = _pack_buckets(buckets)
        with self._lock:
            conn = self._connect()
            if conn is None:
                return
            try:
                with obs.span("store.save", kind="buckets"):
                    conn.execute(
                        "INSERT OR IGNORE INTO buckets "
                        "(system_hash, source_indices, constraint_key, "
                        " members, nbytes, last_access) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        (
                            h,
                            _indices_key(source_indices),
                            constraint_key,
                            blob,
                            len(blob),
                            time.time(),
                        ),
                    )
                    self.writes += 1
                    obs.count("store.write")
                    self._bump_meta(conn, "writes")
                    self._enforce_budget(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("save_buckets failed", exc)

    def load_buckets(
        self, h: str, source_indices: Sequence[int], constraint_key: str
    ) -> list[list[int]] | None:
        key = (h, _indices_key(source_indices), constraint_key)
        with self._lock:
            conn = self._connect()
            if conn is None:
                self._miss(None)
                return None
            try:
                with obs.span("store.load", kind="buckets"):
                    row = conn.execute(
                        "SELECT members FROM buckets WHERE system_hash=? "
                        "AND source_indices=? AND constraint_key=?",
                        key,
                    ).fetchone()
                    if row is None:
                        self._miss(conn)
                        return None
                    conn.execute(
                        "UPDATE buckets SET last_access=? WHERE system_hash=? "
                        "AND source_indices=? AND constraint_key=?",
                        (time.time(), *key),
                    )
                    self._hit(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("load_buckets failed", exc)
                return None
        try:
            return _unpack_buckets(row[0])
        except ValueError:
            obs.count("store.corrupt")
            return None

    # -- composed history arrays ----------------------------------------------

    def save_composed(
        self, h: str, op_indices: Sequence[int], comp
    ) -> None:
        """Persist one composed successor array (``comp[i] = id(H(i))``)
        keyed by the history's op-index tuple, in the canonical 8-byte
        little-endian encoding shared with the kernel tables."""
        blob = _table_bytes(comp)
        with self._lock:
            conn = self._connect()
            if conn is None:
                return
            try:
                with obs.span("store.save", kind="composed"):
                    conn.execute(
                        "INSERT OR IGNORE INTO composed "
                        "(system_hash, op_indices, comp, nbytes, last_access) "
                        "VALUES (?, ?, ?, ?, ?)",
                        (
                            h,
                            _indices_key(op_indices),
                            blob,
                            len(blob),
                            time.time(),
                        ),
                    )
                    self.writes += 1
                    obs.count("store.write")
                    self._bump_meta(conn, "writes")
                    self._enforce_budget(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("save_composed failed", exc)

    def load_composed(
        self, h: str, op_indices: Sequence[int], n: int
    ) -> array | None:
        """The composed array back, or ``None`` on miss/corruption.  A
        blob of the wrong length for an ``n``-state space is deleted and
        counted rather than trusted."""
        key = (h, _indices_key(op_indices))
        with self._lock:
            conn = self._connect()
            if conn is None:
                self._miss(None)
                return None
            try:
                with obs.span("store.load", kind="composed"):
                    row = conn.execute(
                        "SELECT comp FROM composed WHERE system_hash=? "
                        "AND op_indices=?",
                        key,
                    ).fetchone()
                    if row is None:
                        self._miss(conn)
                        return None
                    if len(row[0]) != 8 * n:
                        conn.execute(
                            "DELETE FROM composed WHERE system_hash=? "
                            "AND op_indices=?",
                            key,
                        )
                        conn.commit()
                        obs.count("store.corrupt")
                        self._miss(None)
                        return None
                    conn.execute(
                        "UPDATE composed SET last_access=? WHERE system_hash=? "
                        "AND op_indices=?",
                        (time.time(), *key),
                    )
                    self._hit(conn)
                    conn.commit()
            except sqlite3.Error as exc:
                self._degrade("load_composed failed", exc)
                return None
        arr = array("L")
        arr.frombytes(row[0])
        if sys.byteorder != "little":
            arr.byteswap()
        return arr

    # -- bounding / stats -----------------------------------------------------

    def _payload_bytes(self, conn: sqlite3.Connection) -> int:
        total = 0
        for table in _PAYLOAD_TABLES:
            row = conn.execute(
                f"SELECT COALESCE(SUM(nbytes), 0) FROM {table}"
            ).fetchone()
            total += row[0]
        return total

    def _enforce_budget(self, conn: sqlite3.Connection) -> None:
        """LRU-by-last-access eviction across the payload tables until
        the :class:`~repro.core.cache.ByteMeter` budget holds.  The
        ``systems`` table is exempt: kernels are what make every other
        row decodable, and they are bounded by the number of distinct
        systems, not by the query stream."""
        self.meter.set_used(self._payload_bytes(conn))
        obs.gauge_max("store.bytes", self.meter.used)
        while self.meter.over_budget():
            victim = conn.execute(
                " UNION ALL ".join(
                    f"SELECT '{t}' AS tbl, rowid, nbytes, last_access FROM {t}"
                    for t in _PAYLOAD_TABLES
                )
                + " ORDER BY last_access ASC LIMIT 1"
            ).fetchone()
            if victim is None:
                break
            tbl, rowid, nbytes, _ = victim
            conn.execute(f"DELETE FROM {tbl} WHERE rowid=?", (rowid,))
            self.meter.evicted(nbytes)
            self._bump_meta(conn, "evictions")

    def stats_brief(self) -> dict[str, int]:
        """The integer-only section ``DependencyEngine.cache_stats()``
        embeds: this process's view of the store."""
        out = {
            "attached": 1,
            "degraded": int(self.degraded),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
        }
        out.update(self.meter.stats())
        return out

    def stats(self) -> dict:
        """The full surface ``repro stats --store`` prints: file size,
        schema version, per-table row counts, this process's hit rate,
        and the lifetime meta counters."""
        out: dict = {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "degraded": int(self.degraded),
            "degraded_reason": self.degraded_reason,
            "process": {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.meter.evictions,
            },
        }
        try:
            out["file_bytes"] = os.path.getsize(self.path)
        except OSError:
            out["file_bytes"] = 0
        with self._lock:
            conn = self._connect()
            if conn is None:
                return out
            try:
                tables: dict[str, int] = {}
                for table in ("systems", *_PAYLOAD_TABLES):
                    tables[table] = conn.execute(
                        f"SELECT COUNT(*) FROM {table}"
                    ).fetchone()[0]
                out["rows"] = tables
                out["payload_bytes"] = self._payload_bytes(conn)
                out["max_bytes"] = self.meter.capacity
                lifetime = {
                    key: int(value)
                    for key, value in conn.execute(
                        "SELECT key, value FROM meta WHERE key IN "
                        "('hits', 'misses', 'writes', 'evictions')"
                    )
                }
                out["lifetime"] = lifetime
                asked = lifetime.get("hits", 0) + lifetime.get("misses", 0)
                out["hit_rate"] = (
                    lifetime.get("hits", 0) / asked if asked else None
                )
            except sqlite3.Error as exc:
                self._degrade("stats failed", exc)
        return out
