"""The Worth measure for comparing solutions (section 3.6).

The paper rejects quantitative (bit-counting) comparison of solutions in
favour of a qualitative one::

    Worth(phi) == { <A, beta> | A |>_phi beta }

— the set of information paths a solution still *permits*.  Worths are
ordered by inclusion; a solution is at least as worthy as another when it
permits no path the other forbids.  Because dependency is monotone in the
constraint (Theorem 2-3), this measure is *monotonic* (Def 3-2): less
restrictive solutions are at least as worthy.

:class:`WorthMeasure` computes worths exactly (via pair-graph reachability)
for a fixed family of source sets, and compares solutions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from enum import Enum

from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.system import System


class WorthOrder(Enum):
    """Relative worth of two solutions under the inclusion order."""

    EQUAL = "equal"
    LESS = "less"  # left permits strictly fewer paths (less worthy)
    GREATER = "greater"  # left permits strictly more paths (worthier)
    INCOMPARABLE = "incomparable"


Path = tuple[frozenset[str], str]


@dataclass(frozen=True)
class Worth:
    """The worth of one solution: the set of permitted information paths."""

    constraint_name: str
    paths: frozenset[Path]

    def __le__(self, other: "Worth") -> bool:
        return self.paths <= other.paths

    def compare(self, other: "Worth") -> WorthOrder:
        if self.paths == other.paths:
            return WorthOrder.EQUAL
        if self.paths < other.paths:
            return WorthOrder.LESS
        if self.paths > other.paths:
            return WorthOrder.GREATER
        return WorthOrder.INCOMPARABLE

    def permits(self, sources: Iterable[str], target: str) -> bool:
        return (frozenset(sources), target) in self.paths

    def describe(self) -> str:
        lines = [f"Worth({self.constraint_name}): {len(self.paths)} paths"]
        for sources, target in sorted(
            self.paths, key=lambda p: (sorted(p[0]), p[1])
        ):
            lines.append(f"  {sorted(sources)} |> {target}")
        return "\n".join(lines)


class WorthMeasure:
    """Computes and compares worths over a fixed system and source family.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder().booleans("m").integers("alpha", "beta", bits=1)
    >>> _ = b.op_if("delta", var("m"), "beta", var("alpha"))
    >>> system = b.build()
    >>> measure = WorthMeasure(system)
    >>> w_tt = measure.worth(None)
    >>> w_tt.permits({"alpha"}, "beta")
    True
    """

    def __init__(
        self,
        system: System,
        sources: Iterable[frozenset[str]] | None = None,
    ) -> None:
        self.system = system
        if sources is None:
            self.sources: tuple[frozenset[str], ...] = tuple(
                frozenset([n]) for n in system.space.names
            )
        else:
            self.sources = tuple(frozenset(a) for a in sources)

    def worth(self, constraint: Constraint | None) -> Worth:
        """Compute ``Worth(phi)`` exactly (all histories, pair-graph BFS):
        one shared closure per source set answers every target."""
        name = constraint.name if constraint is not None else "tt"
        results = shared_engine(self.system).closure(constraint, self.sources)
        paths = frozenset(path for path, result in results.items() if result)
        return Worth(constraint_name=name, paths=paths)

    def compare(
        self, phi1: Constraint | None, phi2: Constraint | None
    ) -> WorthOrder:
        """Order two solutions by worth (permitted-path inclusion)."""
        return self.worth(phi1).compare(self.worth(phi2))

    def monotonicity_counterexample(
        self, constraints: Iterable[Constraint]
    ) -> tuple[Constraint, Constraint] | None:
        """Check Def 3-2 monotonicity across a family: whenever
        ``phi1 <= phi2``, ``Worth(phi1) <= Worth(phi2)`` must hold.

        Theorem 2-3 guarantees this for strong dependency, so any
        counterexample signals a bug; the check exists for the fuzzing
        harness and for alternative (non-monotonic) measures discussed in
        section 7.2.
        """
        family = list(constraints)
        worths = {id(phi): self.worth(phi) for phi in family}
        for phi1 in family:
            for phi2 in family:
                if phi1 is phi2 or not phi1.implies(phi2):
                    continue
                if not worths[id(phi1)] <= worths[id(phi2)]:
                    return (phi1, phi2)
        return None
