"""Constraints on states: the paper's phi predicates.

A *constraint* characterizes a set of admissible initial states (section 2.4).
Constraints drive the whole theory:

- They reduce *variety* and thereby prevent transmission (section 2.2).
- Classes of constraints determine where Strong Dependency matches intuition:
  **A-independent** (Def 3-1), **A-strict** (Def 5-1), **A-autonomous**
  (Def 5-2, decided via the substitution characterization of Theorem 5-1),
  and **autonomous** (Def 5-4).
- **Invariance** under a system's operations enables Strong Dependency
  Induction (chapter 4); ``[H]phi`` (Def 6-1) generalizes to non-invariant
  constraints (chapter 6).

A :class:`Constraint` binds a predicate to a finite :class:`~repro.core.state.Space`,
so every classification above is *decided* by enumeration, with witnesses.

Implementation notes
--------------------
The satisfying set is computed once and cached.  The structural classes have
fast set-theoretic characterizations used instead of the naive quantifier
scans:

- phi is A-independent  iff  truth depends only on the values outside A.
- phi is A-strict       iff  truth depends only on the values at A.
- phi is A-autonomous   iff  sat(phi) = (projection onto A) x (projection
  outside A) — i.e. the satisfying set is a rectangle in those coordinates.
  This is exactly Theorem 5-1's closure under substitution.
- phi is autonomous     iff  sat(phi) is the full product of its per-object
  projections (closure under single-object substitution, Def 5-4).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Iterator

from repro.core.errors import ConstraintError, EmptyConstraintError
from repro.core.state import Space, State, Value
from repro.core.system import History, System


class Constraint:
    """A predicate over the states of a finite space.

    >>> from repro.core.state import Space
    >>> sp = Space({"alpha": range(16), "beta": range(16)})
    >>> phi = Constraint(sp, lambda s: s["alpha"] < 10, name="alpha<10")
    >>> phi.is_autonomous()
    True
    >>> phi.is_independent_of({"alpha"})
    False
    >>> phi.is_strict_on({"alpha"})
    True
    """

    __slots__ = ("space", "name", "_fn", "_sat")

    def __init__(
        self,
        space: Space,
        fn: Callable[[State], bool],
        name: str = "phi",
    ) -> None:
        self.space = space
        self.name = name
        self._fn = fn
        self._sat: frozenset[State] | None = None

    def __setattr__(self, key: str, value: object) -> None:
        if key == "_sat" or not hasattr(self, "_sat"):
            object.__setattr__(self, key, value)
        else:
            raise AttributeError("Constraint is immutable")

    # -- basic protocol -------------------------------------------------------

    def __call__(self, state: State) -> bool:
        return bool(self._fn(state))

    def holds(self, state: State) -> bool:
        """Alias for ``phi(state)``."""
        return self(state)

    def __repr__(self) -> str:
        return f"Constraint({self.name!r})"

    # -- satisfying set -------------------------------------------------------

    @property
    def satisfying(self) -> frozenset[State]:
        """All states of the space satisfying the constraint (cached)."""
        if self._sat is None:
            object.__setattr__(
                self,
                "_sat",
                frozenset(s for s in self.space.states() if self._fn(s)),
            )
        return self._sat  # type: ignore[return-value]

    def states(self) -> Iterator[State]:
        """Iterate satisfying states (deterministic order)."""
        sat = self.satisfying
        return (s for s in self.space.states() if s in sat)

    @property
    def is_satisfiable(self) -> bool:
        return bool(self.satisfying)

    def require_satisfiable(self) -> None:
        if not self.is_satisfiable:
            raise EmptyConstraintError(
                f"constraint {self.name!r} admits no state of the space"
            )

    def count(self) -> int:
        """Number of satisfying states."""
        return len(self.satisfying)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def true(cls, space: Space) -> Constraint:
        """The trivial constraint ``tt`` (no restriction at all)."""
        return cls(space, lambda _s: True, name="tt")

    @classmethod
    def false(cls, space: Space) -> Constraint:
        """The unsatisfiable constraint."""
        return cls(space, lambda _s: False, name="ff")

    @classmethod
    def equals(cls, space: Space, name: str, value: Value) -> Constraint:
        """``sigma.name = value`` — the paper's constant constraints
        (e.g. ``sigma.alpha = 13`` in section 3.2)."""
        space.check_names([name])
        return cls(space, lambda s: s[name] == value, name=f"{name}={value!r}")

    @classmethod
    def where(cls, space: Space, **fixed: Value) -> Constraint:
        """Conjunction of equalities, one per keyword."""
        space.check_names(fixed)
        items = tuple(sorted(fixed.items()))
        label = " & ".join(f"{n}={v!r}" for n, v in items)
        return cls(
            space,
            lambda s: all(s[n] == v for n, v in items),
            name=label or "tt",
        )

    @classmethod
    def from_states(
        cls, space: Space, states: Iterable[State], name: str = "phi"
    ) -> Constraint:
        """A constraint holding exactly on the given states."""
        chosen = frozenset(states)
        constraint = cls(space, lambda s: s in chosen, name=name)
        object.__setattr__(constraint, "_sat", chosen & frozenset(space.states()))
        return constraint

    # -- algebra ---------------------------------------------------------------

    def _check_same_space(self, other: Constraint) -> None:
        if self.space != other.space:
            raise ConstraintError(
                f"constraints {self.name!r} and {other.name!r} "
                "are over different spaces"
            )

    def __and__(self, other: Constraint) -> Constraint:
        self._check_same_space(other)
        return Constraint(
            self.space,
            lambda s: self._fn(s) and other._fn(s),
            name=f"({self.name} & {other.name})",
        )

    def __or__(self, other: Constraint) -> Constraint:
        """The *join* of two constraints (section 3.5 studies when joins of
        solutions remain solutions — they generally do not)."""
        self._check_same_space(other)
        return Constraint(
            self.space,
            lambda s: self._fn(s) or other._fn(s),
            name=f"({self.name} | {other.name})",
        )

    def __invert__(self) -> Constraint:
        return Constraint(self.space, lambda s: not self._fn(s), name=f"~{self.name}")

    def implies(self, other: Constraint) -> bool:
        """``phi1 <= phi2`` in the paper's ordering: every phi1-state is a
        phi2-state (used by Theorem 2-3 monotonicity)."""
        self._check_same_space(other)
        return self.satisfying <= other.satisfying

    def equivalent(self, other: Constraint) -> bool:
        self._check_same_space(other)
        return self.satisfying == other.satisfying

    def renamed(self, name: str) -> Constraint:
        clone = Constraint(self.space, self._fn, name=name)
        object.__setattr__(clone, "_sat", self._sat)
        return clone

    # -- structural classes -----------------------------------------------------

    def independence_witness(
        self, names: Iterable[str]
    ) -> tuple[State, State] | None:
        """A pair violating Def 3-1 (A-independence), or None.

        Def 3-1: phi is A-independent iff any two states equal except at A
        get the same truth value — i.e. phi never constrains objects in A.
        """
        chosen = self.space.check_names(names)
        truth_by_rest: dict[tuple[Value, ...], tuple[bool, State]] = {}
        for state in self.space.states():
            key = state.restrict_away(chosen)
            value = self._fn(state)
            seen = truth_by_rest.get(key)
            if seen is None:
                truth_by_rest[key] = (value, state)
            elif seen[0] != value:
                return (seen[1], state)
        return None

    def is_independent_of(self, names: Iterable[str]) -> bool:
        """Def 3-1: phi does not constrain any object in ``names``."""
        return self.independence_witness(names) is None

    def strictness_witness(self, names: Iterable[str]) -> tuple[State, State] | None:
        """A pair violating Def 5-1 (A-strictness), or None.

        Def 5-1: phi is A-strict iff states agreeing at A get the same truth
        value — phi constrains *only* objects in A.
        """
        chosen = self.space.check_names(names)
        truth_by_a: dict[tuple[Value, ...], tuple[bool, State]] = {}
        for state in self.space.states():
            key = state.project(chosen)
            value = self._fn(state)
            seen = truth_by_a.get(key)
            if seen is None:
                truth_by_a[key] = (value, state)
            elif seen[0] != value:
                return (seen[1], state)
        return None

    def is_strict_on(self, names: Iterable[str]) -> bool:
        """Def 5-1: phi constrains only objects in ``names``."""
        return self.strictness_witness(names) is None

    def relative_autonomy_witness(
        self, names: Iterable[str]
    ) -> tuple[State, State] | None:
        """A pair (sigma1, sigma2) with phi(sigma1), phi(sigma2) but not
        phi(sigma2 <|A sigma1) — a violation of Theorem 5-1's
        characterization of A-autonomy — or None if phi is A-autonomous.

        Equivalently (and how it is computed): the satisfying set must be a
        *rectangle* in the (A, not-A) coordinates: every combination of an
        observed A-part with an observed rest-part must itself satisfy phi.
        """
        chosen = self.space.check_names(names)
        sat = self.satisfying
        if not sat:
            return None  # vacuously autonomous
        a_parts: dict[tuple[Value, ...], State] = {}
        rest_parts: dict[tuple[Value, ...], State] = {}
        for state in sorted(sat, key=lambda s: tuple(map(repr, s.values()))):
            a_parts.setdefault(state.project(chosen), state)
            rest_parts.setdefault(state.restrict_away(chosen), state)
        if len(sat) == len(a_parts) * len(rest_parts):
            return None
        # Rectangle property fails; find a concrete violating combination.
        for rest_state in rest_parts.values():
            for a_state in a_parts.values():
                combined = rest_state.substitute(a_state, chosen)
                if combined not in sat:
                    return (a_state, rest_state)
        raise AssertionError("rectangle size mismatch without witness")

    def is_autonomous_relative_to(self, names: Iterable[str]) -> bool:
        """Def 5-2 / Theorem 5-1: phi is A-autonomous — it decomposes into an
        A-strict part and an A-independent part, equivalently its satisfying
        set is closed under substitution at A between satisfying states."""
        return self.relative_autonomy_witness(names) is None

    def autonomy_witness(self) -> tuple[str, State, State] | None:
        """A triple (name, sigma1, sigma2) violating Def 5-4, or None.

        Def 5-4: phi is autonomous iff for every single object alpha and
        satisfying sigma1, sigma2, the state ``sigma2 <|alpha sigma1`` also
        satisfies phi.  Equivalently the satisfying set is the full product
        of its per-object projections.
        """
        sat = self.satisfying
        if not sat:
            return None
        projections: dict[str, set[Value]] = {n: set() for n in self.space.names}
        for state in sat:
            for name in self.space.names:
                projections[name].add(state[name])
        expected = math.prod(len(v) for v in projections.values())
        if len(sat) == expected:
            return None
        # Find a violating single-object substitution.
        sat_sorted = sorted(sat, key=lambda s: tuple(map(repr, s.values())))
        for name in self.space.names:
            for sigma1 in sat_sorted:
                for sigma2 in sat_sorted:
                    if sigma2.substitute(sigma1, [name]) not in sat:
                        return (name, sigma1, sigma2)
        raise AssertionError("product size mismatch without witness")

    def is_autonomous(self) -> bool:
        """Def 5-4 (informally section 2.6): the constraint restricts each
        object's variety independently of every other object."""
        return self.autonomy_witness() is None

    def eliminates_variety_in(self, names: Iterable[str]) -> bool:
        """True when the constraint leaves *no* variety in the named set:
        every satisfying state agrees on all of ``names`` (Theorem 2-4's
        hypothesis, written |sigma.A| = 1 in the paper)."""
        chosen = self.space.check_names(names)
        projections = {s.project(chosen) for s in self.satisfying}
        return len(projections) <= 1

    # -- dynamics ---------------------------------------------------------------

    def invariance_witness(
        self, system: System
    ) -> tuple[State, "str", State] | None:
        """A triple (state, operation name, successor) showing phi is not
        invariant under the system, or None if it is.

        phi is *invariant* when every operation maps phi-states to
        phi-states (the standing assumption of chapter 4).
        """
        if system.space != self.space:
            raise ConstraintError("constraint and system are over different spaces")
        for state in self.states():
            for op in system.operations:
                successor = op(state)
                if not self._fn(successor):
                    return (state, op.name, successor)
        return None

    def is_invariant(self, system: System) -> bool:
        return self.invariance_witness(system) is None

    def after(self, history: History, name: str | None = None) -> Constraint:
        """Def 6-1: ``[H]phi`` — the constraint characterizing the states
        reachable by executing ``history`` from a phi-state.

        >>> from repro.core.state import Space
        >>> from repro.core.system import Operation, History
        >>> sp = Space({"a": range(4), "b": range(4)})
        >>> phi = Constraint(sp, lambda s: s["a"] < 2)
        >>> dec = Operation("dec", lambda s: s.replace(b=max(s["b"] - 1, 0)))
        >>> after = phi.after(History.of(dec))
        >>> all(s["a"] < 2 and s["b"] < 3 for s in after.satisfying)
        True
        """
        image = frozenset(history(s) for s in self.satisfying)
        label = name or f"[{'.'.join(op.name for op in history) or 'lambda'}]{self.name}"
        return Constraint.from_states(self.space, image, name=label)


def conjoin(constraints: Iterable[Constraint], name: str | None = None) -> Constraint:
    """Conjunction of several constraints over the same space."""
    items = list(constraints)
    if not items:
        raise ConstraintError("conjoin requires at least one constraint")
    result = items[0]
    for item in items[1:]:
        result = result & item
    if name is not None:
        result = result.renamed(name)
    return result


def disjoin(constraints: Iterable[Constraint], name: str | None = None) -> Constraint:
    """Disjunction (join) of several constraints over the same space."""
    items = list(constraints)
    if not items:
        raise ConstraintError("disjoin requires at least one constraint")
    result = items[0]
    for item in items[1:]:
        result = result | item
    if name is not None:
        result = result.renamed(name)
    return result
