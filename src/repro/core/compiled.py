"""Compiled integer kernel for the pair-graph decision procedure.

The exact decision ``A |>_phi beta`` (Def 2-7/2-11) is a BFS over the
pair graph, and PR 1's :class:`~repro.core.engine.DependencyEngine`
already shares one closure per ``(A, phi)``.  Its hot loop, however,
still manipulates :class:`~repro.core.state.State` objects: every edge
hashes a ``(State, State)`` tuple and every stopping test compares
Python values field by field.  This module compiles the whole decision
down to integers:

1. **Dense state ids.**  The space is enumerated once, in its canonical
   ``Space.states()`` order, and each state becomes its index ``i`` in
   that enumeration.  Because enumeration is the mixed-radix product of
   the per-object domains, the id decomposes arithmetically::

       i == sum(code_k(i) * stride_k)   with   code_k(i) = (i // stride_k) % size_k

   where ``stride_k`` is the product of the domain sizes of the objects
   after object ``k`` in lexicographic order.  No dict, no hashing.

2. **Flat successor arrays.**  Each operation ``delta`` is executed once
   per state at compile time into ``array('L')`` with
   ``successors[d][i] = id(delta(state_i))`` — a BFS edge is one O(1)
   indexed load instead of a ``State``-keyed dict lookup.

3. **Per-object value columns.**  ``columns[k][i]`` is the domain index
   of object ``k`` in state ``i``; "do two states differ at beta" is an
   integer comparison of two column entries.

4. **Canonical unordered pairs.**  A pair node is the single int
   ``i * n + j`` with ``i <= j``.  Applying one operation to both
   components commutes with swapping the components, and both the
   Def 2-8 initial set and the stopping test ``s1.beta != s2.beta`` are
   symmetric under that swap, so BFS over *unordered* pairs is sound and
   complete and halves the explored set (the swap-symmetry lemma is
   proved in docs/FORMALISM.md; shortest-witness lengths are preserved).

The kernel (:class:`CompiledKernel`) is deliberately free of ``State``,
``Operation`` and lambda references: it is picklable, so
:meth:`DependencyEngine._warm <repro.core.engine.DependencyEngine._warm>`
can ship it once per :class:`~concurrent.futures.ProcessPoolExecutor`
worker and fan independent ``(A, phi)`` closures across cores — the hot
loop is pure int/array work, so threads would serialize on the GIL but
processes scale.  :class:`CompiledSystem` binds a kernel to its
:class:`~repro.core.system.System` so results decode back to
``State``/``Witness`` objects only at the API boundary.
"""

from __future__ import annotations

from array import array
from collections import deque
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro import obs
from repro.core import faults
from repro.core.budget import BudgetMeter, ExecutionBudget
from repro.core.constraints import Constraint
from repro.core.state import State
from repro.core.system import System

#: Packed-parent sentinel for Def 2-8 initial pairs (no predecessor).
INITIAL = -1


class CompiledKernel:
    """The pure-integer tables of a finite system.

    Holds no ``State``/``Operation``/lambda references, so instances
    pickle cheaply — this is the payload shipped once per process-pool
    worker.  All methods speak state ids and encoded pair ints only.
    """

    __slots__ = ("n", "names", "sizes", "strides", "columns", "op_names", "successors")

    def __init__(
        self,
        n: int,
        names: tuple[str, ...],
        sizes: tuple[int, ...],
        strides: tuple[int, ...],
        columns: tuple[array, ...],
        op_names: tuple[str, ...],
        successors: tuple[array, ...],
    ) -> None:
        self.n = n
        self.names = names
        self.sizes = sizes
        self.strides = strides
        self.columns = columns
        self.op_names = op_names
        self.successors = successors

    def __reduce__(self):
        return (
            CompiledKernel,
            (
                self.n,
                self.names,
                self.sizes,
                self.strides,
                self.columns,
                self.op_names,
                self.successors,
            ),
        )

    # -- Def 1-1 partitions ---------------------------------------------------

    def buckets(
        self,
        source_indices: Sequence[int],
        sat_ids: Iterable[int] | None = None,
    ) -> dict[int, list[int]]:
        """Partition ``sat_ids`` (default: all states) into classes equal
        except at the source objects (Def 1-1), keyed by the id with the
        source coordinates zeroed.  Bucket members are ascending, and
        buckets appear in first-seen (enumeration) order — identical to
        the ``State``-level partition, so BFS seeding order matches."""
        ids: Iterable[int] = range(self.n) if sat_ids is None else sat_ids
        src = [(self.strides[k], self.sizes[k]) for k in source_indices]
        groups: dict[int, list[int]] = {}
        for i in ids:
            rest = i
            for stride, size in src:
                rest -= ((i // stride) % size) * stride
            group = groups.get(rest)
            if group is None:
                groups[rest] = [i]
            else:
                group.append(i)
        return groups

    # -- the BFS kernel -------------------------------------------------------

    def closure(
        self,
        source_indices: Sequence[int],
        sat_ids: Iterable[int] | None = None,
        meter: BudgetMeter | None = None,
        stats: dict[str, int] | None = None,
    ) -> tuple[array, dict[int, int]]:
        """The reachable canonical-pair set for ``(A, phi)``.

        Returns ``(order, parents)``: ``order`` is an ``array('L')`` of
        encoded pairs ``i * n + j`` (``i < j``) in BFS layer order, and
        ``parents[pair]`` packs the predecessor as
        ``parent_pair * len(ops) + op_index`` (or :data:`INITIAL` for
        Def 2-8 seeds).  This is the process-parallel unit of work: pure
        int arithmetic, no object hashing.

        Diagonal pairs (two equal components) are pruned: they differ
        nowhere, and equal states have equal successors, so no stopping
        test is ever reachable through one — skipping them is sound and
        trims every converging edge of the graph.

        With a ``meter`` (see :class:`~repro.core.budget.BudgetMeter`)
        the BFS checks its budget once after seeding and then every
        ``meter.interval`` expansions, raising
        :class:`~repro.core.budget.BudgetExceededError` with the partial
        counts.  With a ``stats`` dict (passed only when telemetry is
        enabled) the loop additionally tracks the frontier high-water
        mark and writes ``expansions`` / ``discovered`` /
        ``frontier_high_water`` into it.  The plain loop is kept
        separate so ungoverned, untraced runs pay nothing.
        """
        n = self.n
        successors = self.successors
        n_ops = len(successors) or 1
        parents: dict[int, int] = {}
        seed: deque[int] = deque()
        for bucket in self.buckets(source_indices, sat_ids).values():
            m = len(bucket)
            for a in range(m - 1):
                base = bucket[a] * n
                for b in range(a + 1, m):
                    pair = base + bucket[b]
                    if pair not in parents:
                        parents[pair] = INITIAL
                        seed.append(pair)
        # The order list doubles as the BFS queue (a cursor walks it);
        # every visited pair stays in it, in layer order.
        order = list(seed)
        record = order.append
        setdefault = parents.setdefault
        cursor = 0
        if meter is None and stats is None:
            while cursor < len(order):
                pair = order[cursor]
                cursor += 1
                i, j = divmod(pair, n)
                # `packed` runs through pair*n_ops + d as d walks the
                # operations, so the parent pointer is one add per edge.
                packed = pair * n_ops
                for successor in successors:
                    si = successor[i]
                    sj = successor[j]
                    if si != sj:
                        succ_pair = si * n + sj if si < sj else sj * n + si
                        # One dict operation for membership + insert: the
                        # packed value is unique per edge, so identity of
                        # the returned value means the insert happened.
                        if setdefault(succ_pair, packed) is packed:
                            record(succ_pair)
                    packed += 1
            return array("L", order), parents
        # Governed/traced variant: identical body plus an amortized
        # budget check every `interval` expansions (a zero-expansion
        # budget trips before the first pair is expanded) and, when
        # requested, frontier high-water tracking.
        if meter is not None:
            interval = meter.interval
            meter.check(0, len(parents), len(order))
        else:
            interval = 0
        next_check = interval
        max_frontier = len(order)
        try:
            while cursor < len(order):
                frontier = len(order) - cursor
                if frontier > max_frontier:
                    max_frontier = frontier
                if meter is not None and cursor >= next_check:
                    meter.check(cursor, len(parents), frontier)
                    next_check = cursor + interval
                pair = order[cursor]
                cursor += 1
                i, j = divmod(pair, n)
                packed = pair * n_ops
                for successor in successors:
                    si = successor[i]
                    sj = successor[j]
                    if si != sj:
                        succ_pair = si * n + sj if si < sj else sj * n + si
                        if setdefault(succ_pair, packed) is packed:
                            record(succ_pair)
                    packed += 1
        finally:
            if stats is not None:
                stats["expansions"] = cursor
                stats["discovered"] = len(parents)
                stats["frontier_high_water"] = max_frontier
        return array("L", order), parents


class CompiledSystem:
    """A :class:`~repro.core.system.System` compiled to integer tables.

    Enumerates the space once (executing each operation exactly once per
    state — the same budget as PR 1's transition tabulation), then serves
    every pair-graph question from :attr:`kernel`.  ``State`` objects are
    kept only for decoding ids back at the API boundary.
    """

    __slots__ = ("system", "states", "kernel", "_sat_ids", "_composed")

    def __init__(self, system: System) -> None:
        self.system = system
        space = system.space
        states = tuple(space.states())
        n = len(states)
        names = space.names
        sizes = tuple(len(space.domain(name)) for name in names)
        strides_rev: list[int] = []
        acc = 1
        for size in reversed(sizes):
            strides_rev.append(acc)
            acc *= size
        strides = tuple(reversed(strides_rev))
        # Enumeration is the mixed-radix product, so columns are pure
        # arithmetic in the id — no per-state value hashing.
        columns = tuple(
            array("L", ((i // stride) % size for i in range(n)))
            for stride, size in zip(strides, sizes)
        )
        index = {state: i for i, state in enumerate(states)}
        successors = tuple(
            array("L", (index[op(state)] for state in states))
            for op in system.operations
        )
        self.states = states
        self.kernel = CompiledKernel(
            n,
            names,
            sizes,
            strides,
            columns,
            tuple(op.name for op in system.operations),
            successors,
        )
        self._sat_ids: dict[Constraint | None, array | None] = {}
        self._composed: dict[tuple[int, ...], array] = {}

    # -- constraints ----------------------------------------------------------

    def sat_ids(self, constraint: Constraint | None) -> array | None:
        """The satisfying state ids of ``constraint`` in ascending order,
        or ``None`` for the unconstrained (full-space) fast path.  A
        constraint satisfied by the whole space also maps to ``None`` —
        its id list would be ``range(n)`` verbatim.  Cached per
        constraint *instance*, mirroring the engine's closure keys."""
        if constraint is None:
            return None
        try:
            return self._sat_ids[constraint]
        except KeyError:
            pass
        sat = constraint.satisfying
        cached: array | None
        if len(sat) == self.kernel.n:
            cached = None
        else:
            cached = array(
                "L", (i for i, state in enumerate(self.states) if state in sat)
            )
        self._sat_ids[constraint] = cached
        return cached

    # -- fixed histories ------------------------------------------------------

    def history_array(self, op_indices: Sequence[int]) -> array:
        """The composed successor array of a fixed history.

        For ``H = delta_1 ... delta_k`` (given as operation *indices* into
        :attr:`CompiledKernel.successors`), returns ``comp`` with
        ``comp[i] = id(H(state_i))`` — one flat ``array('L')`` built by
        index-gather composition, so evaluating ``H`` over any subset of
        the space is pure integer loads with zero lambda execution.  The
        empty history is the identity permutation.

        Memoized per op-index tuple *including every prefix built along
        the way*: ``H`` and ``H' = H ; delta`` share all of ``H``'s work,
        which is what makes sweeps over ``System.histories(max_length)``
        linear in the number of histories rather than their total length.
        """
        key = tuple(op_indices)
        cached = self._composed.get(key)
        if cached is not None:
            obs.count("kernel.history_compose.memo_hit")
            return cached
        identity = self._composed.get(())
        if identity is None:
            identity = array("L", range(self.kernel.n))
            self._composed[()] = identity
        # Longest already-composed prefix, then extend one gather at a time.
        prefix = len(key)
        base = None
        while prefix > 0:
            base = self._composed.get(key[:prefix])
            if base is not None:
                break
            prefix -= 1
        if base is None:
            base = identity
            prefix = 0
        successors = self.kernel.successors
        for pos in range(prefix, len(key)):
            succ = successors[key[pos]]
            base = array("L", (succ[i] for i in base))
            self._composed[key[: pos + 1]] = base
        if len(key) > prefix:
            obs.count("kernel.history_compose.gathers", len(key) - prefix)
        return base

    def source_indices(self, sources: Iterable[str]) -> tuple[int, ...]:
        """Object names to column indices (ascending)."""
        position = {name: k for k, name in enumerate(self.kernel.names)}
        return tuple(sorted(position[name] for name in sources))

    def closure(
        self,
        sources: frozenset[str],
        constraint: Constraint | None = None,
        constraint_name: str = "tt",
        meter: BudgetMeter | None = None,
    ) -> "CompiledClosure":
        """Compute one canonical-pair closure in this process."""
        if not obs.is_enabled():
            order, parents = self.kernel.closure(
                self.source_indices(sources), self.sat_ids(constraint), meter
            )
            return CompiledClosure(self, sources, constraint_name, order, parents)
        stats: dict[str, int] = {}
        with obs.span(
            "kernel.closure",
            sources=",".join(sorted(sources)),
            constraint=constraint_name,
        ):
            try:
                order, parents = self.kernel.closure(
                    self.source_indices(sources),
                    self.sat_ids(constraint),
                    meter,
                    stats,
                )
            finally:
                _emit_kernel_stats(stats)
        return CompiledClosure(self, sources, constraint_name, order, parents)


class CompiledClosure:
    """A canonical unordered-pair closure in integer form.

    The compiled analogue of :class:`~repro.core.engine.PairClosure`:
    ``order`` lists encoded pairs in BFS (shortest-path) order and
    ``parents`` packs predecessor pointers, so every target — single or
    set-valued — is answered by integer column comparisons, and decoding
    to ``State`` objects happens only when a witness is materialized.
    """

    __slots__ = ("compiled", "sources", "constraint_name", "order", "parents", "_first_diff")

    def __init__(
        self,
        compiled: CompiledSystem,
        sources: frozenset[str],
        constraint_name: str,
        order: array,
        parents: dict[int, int],
    ) -> None:
        self.compiled = compiled
        self.sources = sources
        self.constraint_name = constraint_name
        self.order = order
        self.parents = parents
        self._first_diff: dict[str, int] | None = None

    def __len__(self) -> int:
        return len(self.order)

    # -- queries --------------------------------------------------------------

    def first_differing(self) -> Mapping[str, int]:
        """For each object name, the earliest reachable pair differing
        there (one integer sweep over the BFS order, cached).  A name
        absent from the mapping is one no reachable pair distinguishes."""
        if self._first_diff is None:
            kernel = self.compiled.kernel
            n = kernel.n
            pending = list(zip(kernel.names, kernel.columns))
            first: dict[str, int] = {}
            for pair in self.order:
                i, j = divmod(pair, n)
                if i == j:
                    continue
                found = False
                for name, column in pending:
                    if column[i] != column[j]:
                        first[name] = pair
                        found = True
                if found:
                    pending = [nc for nc in pending if nc[0] not in first]
                    if not pending:
                        break
            self._first_diff = first
        return self._first_diff

    def first_differing_at_all(self, targets: Iterable[str]) -> int | None:
        """The earliest reachable pair differing at *every* object of the
        target set (Def 5-5/5-7), or ``None``."""
        kernel = self.compiled.kernel
        first = self.first_differing()
        target_list = sorted(targets)
        if not all(t in first for t in target_list):
            return None
        column_of = dict(zip(kernel.names, kernel.columns))
        cols = [column_of[t] for t in target_list]
        n = kernel.n
        for pair in self.order:
            i, j = divmod(pair, n)
            for column in cols:
                if column[i] == column[j]:
                    break
            else:
                return pair
        return None

    # -- decoding -------------------------------------------------------------

    def witness_path(
        self, pair: int
    ) -> tuple[tuple[str, ...], tuple[State, State]]:
        """The operation names leading from a Def 2-8 initial pair to
        ``pair``, plus that initial pair decoded to ``State`` objects."""
        kernel = self.compiled.kernel
        n_ops = len(kernel.op_names) or 1
        ops: list[str] = []
        cursor = pair
        while True:
            packed = self.parents[cursor]
            if packed < 0:
                break
            cursor, d = divmod(packed, n_ops)
            ops.append(kernel.op_names[d])
        ops.reverse()
        i, j = divmod(cursor, kernel.n)
        states = self.compiled.states
        return tuple(ops), (states[i], states[j])

    def decode_pair(self, pair: int) -> tuple[State, State]:
        i, j = divmod(pair, self.compiled.kernel.n)
        states = self.compiled.states
        return (states[i], states[j])

    def pairs(self) -> Iterator[tuple[State, State]]:
        """Decode the whole closure in BFS order (API-boundary use only —
        this materializes the Python objects the kernel avoids)."""
        for pair in self.order:
            yield self.decode_pair(pair)


# -- process-pool plumbing ----------------------------------------------------
#
# The worker side of DependencyEngine._warm's process fan-out: the kernel
# (and the per-warm sat ids / budget limits) are shipped once via the pool
# initializer; each task is then a (task index, source column indices)
# tuple, and the result is the raw (order, parents) integer closure,
# decoded in the parent.  The task index feeds the fault-injection seam
# (repro.core.faults) and labels worker-side budget trips.

_WORKER_KERNEL: CompiledKernel | None = None
_WORKER_SAT_IDS: array | None = None
_WORKER_LIMITS: tuple[float | None, int | None, int | None] | None = None


def _emit_kernel_stats(stats: dict[str, int]) -> None:
    """Publish one traced BFS run's counters.  ``stats`` may be partial
    when the budget tripped mid-sweep — only the keys the kernel managed
    to write are emitted."""
    if "expansions" in stats:
        obs.count("kernel.pair_expansions", stats["expansions"])
    if "discovered" in stats:
        obs.count("kernel.pairs_discovered", stats["discovered"])
    if "frontier_high_water" in stats:
        obs.gauge_max("kernel.frontier_high_water", stats["frontier_high_water"])


def _worker_init(
    kernel: CompiledKernel,
    sat_ids: array | None,
    limits: tuple[float | None, int | None, int | None] | None = None,
    telemetry: bool = False,
) -> None:
    global _WORKER_KERNEL, _WORKER_SAT_IDS, _WORKER_LIMITS
    _WORKER_KERNEL = kernel
    _WORKER_SAT_IDS = sat_ids
    _WORKER_LIMITS = limits
    if telemetry:
        obs.enable()


def _worker_closure(
    task: tuple[int, tuple[int, ...]]
) -> tuple[array, dict[int, int], obs.telemetry.Batch | None]:
    """One closure in a pool worker.  The third element is the worker's
    telemetry batch (spans + counters accumulated since the previous
    task), shipped home for :func:`repro.obs.absorb_batch` — or ``None``
    when telemetry is off, keeping the result stream byte-identical to
    the untraced path."""
    assert _WORKER_KERNEL is not None, "worker pool initializer did not run"
    index, source_indices = task
    faults.inject("worker", index)
    meter = None
    if _WORKER_LIMITS is not None:
        budget = ExecutionBudget.from_limits(_WORKER_LIMITS)
        meter = budget.start(f"worker closure #{index}")
    if not obs.is_enabled():
        order, parents = _WORKER_KERNEL.closure(source_indices, _WORKER_SAT_IDS, meter)
        return order, parents, None
    stats: dict[str, int] = {}
    with obs.span("worker.closure", task=index):
        try:
            order, parents = _WORKER_KERNEL.closure(
                source_indices, _WORKER_SAT_IDS, meter, stats
            )
        finally:
            _emit_kernel_stats(stats)
    return order, parents, obs.export_batch()
