"""Compiled integer kernel for the pair-graph decision procedure.

The exact decision ``A |>_phi beta`` (Def 2-7/2-11) is a BFS over the
pair graph, and PR 1's :class:`~repro.core.engine.DependencyEngine`
already shares one closure per ``(A, phi)``.  Its hot loop, however,
still manipulates :class:`~repro.core.state.State` objects: every edge
hashes a ``(State, State)`` tuple and every stopping test compares
Python values field by field.  This module compiles the whole decision
down to integers:

1. **Dense state ids.**  The space is enumerated once, in its canonical
   ``Space.states()`` order, and each state becomes its index ``i`` in
   that enumeration.  Because enumeration is the mixed-radix product of
   the per-object domains, the id decomposes arithmetically::

       i == sum(code_k(i) * stride_k)   with   code_k(i) = (i // stride_k) % size_k

   where ``stride_k`` is the product of the domain sizes of the objects
   after object ``k`` in lexicographic order.  No dict, no hashing.

2. **Flat successor arrays.**  Each operation ``delta`` is executed once
   per state at compile time into ``array('L')`` with
   ``successors[d][i] = id(delta(state_i))`` — a BFS edge is one O(1)
   indexed load instead of a ``State``-keyed dict lookup.

3. **Per-object value columns.**  ``columns[k][i]`` is the domain index
   of object ``k`` in state ``i``; "do two states differ at beta" is an
   integer comparison of two column entries.

4. **Canonical unordered pairs.**  A pair node is the single int
   ``i * n + j`` with ``i <= j``.  Applying one operation to both
   components commutes with swapping the components, and both the
   Def 2-8 initial set and the stopping test ``s1.beta != s2.beta`` are
   symmetric under that swap, so BFS over *unordered* pairs is sound and
   complete and halves the explored set (the swap-symmetry lemma is
   proved in docs/FORMALISM.md; shortest-witness lengths are preserved).

The kernel (:class:`CompiledKernel`) is deliberately free of ``State``,
``Operation`` and lambda references: it is picklable, so
:meth:`DependencyEngine._warm <repro.core.engine.DependencyEngine._warm>`
can ship it once per :class:`~concurrent.futures.ProcessPoolExecutor`
worker and fan independent ``(A, phi)`` closures across cores — the hot
loop is pure int/array work, so threads would serialize on the GIL but
processes scale.  :class:`CompiledSystem` binds a kernel to its
:class:`~repro.core.system.System` so results decode back to
``State``/``Witness`` objects only at the API boundary.
"""

from __future__ import annotations

import threading
from array import array
from collections import deque
from collections.abc import Iterable, Iterator, Mapping, Sequence

from repro import obs
from repro.core import bitset, faults
from repro.core.budget import BudgetMeter, ExecutionBudget
from repro.core.cache import LRUCache
from repro.core.constraints import Constraint
from repro.core.state import State, Value
from repro.core.system import System

#: Packed-parent sentinel for Def 2-8 initial pairs (no predecessor).
INITIAL = -1

#: Bound on the per-system satisfying-id memo.  Entries are keyed by
#: constraint *instance* (predicates cannot be hashed semantically), so
#: a query stream minting equal-but-distinct constraints would otherwise
#: grow it forever; the cap turns that into LRU churn.
SAT_IDS_CAP = 256

#: Bound on the composed-prefix memo.  ``System.histories(max_length)``
#: sweeps touch a combinatorial number of prefixes; eviction only costs
#: re-gathering from the longest prefix still cached.
COMPOSED_CAP = 2048

#: Kernel selection vocabulary: ``auto`` picks the bulk kernel for
#: spaces of at least :data:`BITSET_AUTO_MIN_STATES` states and the
#: scalar kernel below (tiny systems are faster scalar, and keep their
#: historical ``compiled`` provenance).
KERNEL_MODES = ("auto", "scalar", "bitset")
BITSET_AUTO_MIN_STATES = 64

#: Sentinel distinguishing "not cached" from a cached ``None``.
_MISSING = object()


class CompiledKernel:
    """The pure-integer tables of a finite system.

    Holds no ``State``/``Operation``/lambda references, so instances
    pickle cheaply — this is the payload shipped once per process-pool
    worker.  All methods speak state ids and encoded pair ints only.
    """

    __slots__ = ("n", "names", "sizes", "strides", "columns", "op_names", "successors")

    def __init__(
        self,
        n: int,
        names: tuple[str, ...],
        sizes: tuple[int, ...],
        strides: tuple[int, ...],
        columns: tuple[array, ...],
        op_names: tuple[str, ...],
        successors: tuple[array, ...],
    ) -> None:
        self.n = n
        self.names = names
        self.sizes = sizes
        self.strides = strides
        self.columns = columns
        self.op_names = op_names
        self.successors = successors

    def __reduce__(self):
        return (
            CompiledKernel,
            (
                self.n,
                self.names,
                self.sizes,
                self.strides,
                self.columns,
                self.op_names,
                self.successors,
            ),
        )

    # -- Def 1-1 partitions ---------------------------------------------------

    def buckets(
        self,
        source_indices: Sequence[int],
        sat_ids: Iterable[int] | None = None,
    ) -> dict[int, list[int]]:
        """Partition ``sat_ids`` (default: all states) into classes equal
        except at the source objects (Def 1-1), keyed by the id with the
        source coordinates zeroed.  Bucket members are ascending, and
        buckets appear in first-seen (enumeration) order — identical to
        the ``State``-level partition, so BFS seeding order matches."""
        ids: Iterable[int] = range(self.n) if sat_ids is None else sat_ids
        src = [(self.strides[k], self.sizes[k]) for k in source_indices]
        groups: dict[int, list[int]] = {}
        for i in ids:
            rest = i
            for stride, size in src:
                rest -= ((i // stride) % size) * stride
            group = groups.get(rest)
            if group is None:
                groups[rest] = [i]
            else:
                group.append(i)
        return groups

    # -- the BFS kernel -------------------------------------------------------

    def closure(
        self,
        source_indices: Sequence[int],
        sat_ids: Iterable[int] | None = None,
        meter: BudgetMeter | None = None,
        stats: dict[str, int] | None = None,
    ) -> tuple[array, dict[int, int]]:
        """The reachable canonical-pair set for ``(A, phi)``.

        Returns ``(order, parents)``: ``order`` is an ``array('L')`` of
        encoded pairs ``i * n + j`` (``i < j``) in BFS layer order, and
        ``parents[pair]`` packs the predecessor as
        ``parent_pair * len(ops) + op_index`` (or :data:`INITIAL` for
        Def 2-8 seeds).  This is the process-parallel unit of work: pure
        int arithmetic, no object hashing.

        Diagonal pairs (two equal components) are pruned: they differ
        nowhere, and equal states have equal successors, so no stopping
        test is ever reachable through one — skipping them is sound and
        trims every converging edge of the graph.

        With a ``meter`` (see :class:`~repro.core.budget.BudgetMeter`)
        the BFS checks its budget once after seeding and then every
        ``meter.interval`` expansions, raising
        :class:`~repro.core.budget.BudgetExceededError` with the partial
        counts.  With a ``stats`` dict (passed only when telemetry is
        enabled) the loop additionally tracks the frontier high-water
        mark and writes ``expansions`` / ``discovered`` /
        ``frontier_high_water`` into it.  The plain loop is kept
        separate so ungoverned, untraced runs pay nothing.
        """
        n = self.n
        successors = self.successors
        n_ops = len(successors) or 1
        parents: dict[int, int] = {}
        seed: deque[int] = deque()
        for bucket in self.buckets(source_indices, sat_ids).values():
            m = len(bucket)
            for a in range(m - 1):
                base = bucket[a] * n
                for b in range(a + 1, m):
                    pair = base + bucket[b]
                    if pair not in parents:
                        parents[pair] = INITIAL
                        seed.append(pair)
        # The order list doubles as the BFS queue (a cursor walks it);
        # every visited pair stays in it, in layer order.
        order = list(seed)
        record = order.append
        cursor = 0
        if meter is None and stats is None:
            while cursor < len(order):
                pair = order[cursor]
                cursor += 1
                i, j = divmod(pair, n)
                # `packed` runs through pair*n_ops + d as d walks the
                # operations, so the parent pointer is one add per edge.
                packed = pair * n_ops
                for successor in successors:
                    si = successor[i]
                    sj = successor[j]
                    if si != sj:
                        succ_pair = si * n + sj if si < sj else sj * n + si
                        # Explicit containment, NOT `setdefault(...) is
                        # packed`: identity of equal ints beyond the small
                        # cache is a CPython detail, and a value-interning
                        # runtime would re-record visited pairs.
                        if succ_pair not in parents:
                            parents[succ_pair] = packed
                            record(succ_pair)
                    packed += 1
            return array("L", order), parents
        # Governed/traced variant: identical body plus an amortized
        # budget check every `interval` expansions (a zero-expansion
        # budget trips before the first pair is expanded) and, when
        # requested, frontier high-water tracking.
        if meter is not None:
            interval = meter.interval
            meter.check(0, len(parents), len(order))
        else:
            interval = 0
        next_check = interval
        max_frontier = len(order)
        try:
            while cursor < len(order):
                frontier = len(order) - cursor
                if frontier > max_frontier:
                    max_frontier = frontier
                if meter is not None and cursor >= next_check:
                    meter.check(cursor, len(parents), frontier)
                    next_check = cursor + interval
                pair = order[cursor]
                cursor += 1
                i, j = divmod(pair, n)
                packed = pair * n_ops
                for successor in successors:
                    si = successor[i]
                    sj = successor[j]
                    if si != sj:
                        succ_pair = si * n + sj if si < sj else sj * n + si
                        if succ_pair not in parents:
                            parents[succ_pair] = packed
                            record(succ_pair)
                    packed += 1
        finally:
            if stats is not None:
                stats["expansions"] = cursor
                stats["discovered"] = len(parents)
                stats["frontier_high_water"] = max_frontier
        return array("L", order), parents


class CompiledSystem:
    """A :class:`~repro.core.system.System` compiled to integer tables.

    Enumerates the space once (executing each operation exactly once per
    state — the same budget as PR 1's transition tabulation), then serves
    every pair-graph question from :attr:`kernel`.  ``State`` objects are
    kept only for decoding ids back at the API boundary.
    """

    __slots__ = ("system", "states", "kernel", "_bitset", "_lock", "_sat_ids", "_composed")

    def __init__(self, system: System, kernel: CompiledKernel | None = None) -> None:
        self.system = system
        space = system.space
        states = tuple(space.states())
        n = len(states)
        names = space.names
        sizes = tuple(len(space.domain(name)) for name in names)
        op_names = tuple(op.name for op in system.operations)
        self.states = states
        if kernel is not None:
            # Hydration path: adopt tables loaded from a persistent store
            # (repro.core.store) without re-executing any operation.  The
            # shape check guards against a hash collision or a caller
            # pairing the wrong kernel with this system; the successor
            # *contents* are trusted — they are what the content hash is
            # computed over.
            if (
                kernel.n != n
                or kernel.names != names
                or kernel.sizes != sizes
                or kernel.op_names != op_names
            ):
                raise ValueError(
                    "stored kernel does not match this system's shape"
                )
            self.kernel = kernel
        else:
            strides_rev: list[int] = []
            acc = 1
            for size in reversed(sizes):
                strides_rev.append(acc)
                acc *= size
            strides = tuple(reversed(strides_rev))
            # Enumeration is the mixed-radix product, so columns are pure
            # arithmetic in the id — no per-state value hashing.
            columns = tuple(
                array("L", ((i // stride) % size for i in range(n)))
                for stride, size in zip(strides, sizes)
            )
            index = {state: i for i, state in enumerate(states)}
            successors = tuple(
                array("L", (index[op(state)] for state in states))
                for op in system.operations
            )
            self.kernel = CompiledKernel(
                n,
                names,
                sizes,
                strides,
                columns,
                op_names,
                successors,
            )
        self._bitset: bitset.BitsetKernel | None = None
        self._lock = threading.Lock()
        self._sat_ids = LRUCache(SAT_IDS_CAP, "kernel.sat_ids.evictions")
        self._composed = LRUCache(COMPOSED_CAP, "kernel.history_compose.evictions")

    def bitset_kernel(self) -> bitset.BitsetKernel:
        """The bulk (bitset/NumPy) twin of :attr:`kernel`, built once
        (lazy — scalar-only engines never pay for the table copies)."""
        if self._bitset is None:
            built = bitset.BitsetKernel(self.kernel)
            with self._lock:
                if self._bitset is None:
                    self._bitset = built
        return self._bitset

    def cache_stats(self) -> dict[str, dict[str, int]]:
        """Size/capacity/eviction stats of the kernel-side bounded memos
        — surfaced through ``DependencyEngine.cache_stats()``."""
        with self._lock:
            return {
                "composed": self._composed.stats(),
                "sat_ids": self._sat_ids.stats(),
            }

    # -- constraints ----------------------------------------------------------

    def sat_ids(self, constraint: Constraint | None) -> array | None:
        """The satisfying state ids of ``constraint`` in ascending order,
        or ``None`` for the unconstrained (full-space) fast path.

        Keyed by the *resolved* constraint identity, following the
        engine's ``_flow_key`` convention: any constraint the whole
        space satisfies resolves to ``None`` — the shared fast path —
        so semantically-trivial instances stop minting per-instance
        ``range(n)`` copies.  Distinct non-trivial instances still get
        separate entries (predicates cannot be compared semantically
        without enumerating them), but the memo is now a bounded LRU
        (:data:`SAT_IDS_CAP`) instead of growing with the query stream.
        """
        if constraint is None:
            return None
        with self._lock:
            cached = self._sat_ids.get(constraint, _MISSING)
        if cached is not _MISSING:
            return cached
        sat = constraint.satisfying
        value: array | None
        if len(sat) == self.kernel.n:
            value = None
        else:
            value = array(
                "L", (i for i, state in enumerate(self.states) if state in sat)
            )
        with self._lock:
            return self._sat_ids.put(constraint, value)

    # -- fixed histories ------------------------------------------------------

    def history_array(self, op_indices: Sequence[int]) -> array:
        """The composed successor array of a fixed history.

        For ``H = delta_1 ... delta_k`` (given as operation *indices* into
        :attr:`CompiledKernel.successors`), returns ``comp`` with
        ``comp[i] = id(H(state_i))`` — one flat ``array('L')`` built by
        index-gather composition, so evaluating ``H`` over any subset of
        the space is pure integer loads with zero lambda execution.  The
        empty history is the identity permutation.

        Memoized per op-index tuple *including every prefix built along
        the way*: ``H`` and ``H' = H ; delta`` share all of ``H``'s work,
        which is what makes sweeps over ``System.histories(max_length)``
        linear in the number of histories rather than their total length.
        The memo is a bounded LRU (:data:`COMPOSED_CAP`): long sweeps
        churn the cold tail instead of growing without bound, and
        eviction stays correct for prefix reuse because composition
        always restarts from the *longest prefix still cached* (the
        identity if everything was evicted) — an evicted prefix only
        costs its gathers back, never a wrong array.
        """
        key = tuple(op_indices)
        with self._lock:
            cached = self._composed.get(key)
            if cached is not None:
                obs.count("kernel.history_compose.memo_hit")
                return cached
            identity = self._composed.get(())
            if identity is None:
                identity = self._composed.put(
                    (), array("L", range(self.kernel.n))
                )
            # Longest already-composed prefix, then extend one gather at
            # a time (each written back, refreshing its recency).
            prefix = len(key)
            base = None
            while prefix > 0:
                base = self._composed.get(key[:prefix])
                if base is not None:
                    break
                prefix -= 1
            if base is None:
                base = identity
                prefix = 0
        successors = self.kernel.successors
        for pos in range(prefix, len(key)):
            succ = successors[key[pos]]
            base = array("L", (succ[i] for i in base))
            with self._lock:
                base = self._composed.put(key[: pos + 1], base)
        if len(key) > prefix:
            obs.count("kernel.history_compose.gathers", len(key) - prefix)
        return base

    def cached_history_array(self, op_indices: Sequence[int]) -> array | None:
        """Peek the composed-array memo: the array if present, ``None``
        otherwise — never composes on a miss (callers that have a
        cheaper source, e.g. the persistent store, check here first)."""
        with self._lock:
            return self._composed.get(tuple(op_indices))

    def adopt_history_array(
        self, op_indices: Sequence[int], comp: array
    ) -> array:
        """Install an externally-computed composed array (a persistent-
        store load) into the memo; returns the instance now cached."""
        if len(comp) != self.kernel.n:
            raise ValueError(
                "composed array length does not match the space"
            )
        key = tuple(op_indices)
        with self._lock:
            cached = self._composed.get(key)
            if cached is not None:
                return cached
            return self._composed.put(key, comp)

    # -- value decoding -------------------------------------------------------

    def value_column(self, name: str) -> tuple[array, tuple[Value, ...]]:
        """``(column, domain)`` for one object: ``domain[column[i]]`` is
        the value of ``name`` in ``state_i`` — value reads off ids with
        no ``State`` materialization."""
        k = self.kernel.names.index(name)
        return self.kernel.columns[k], self.system.space.domain(name)

    def value_columns(
        self, names: Iterable[str]
    ) -> tuple[tuple[array, tuple[Value, ...]], ...]:
        """:meth:`value_column` over several objects, in the given order."""
        return tuple(self.value_column(name) for name in names)

    def source_indices(self, sources: Iterable[str]) -> tuple[int, ...]:
        """Object names to column indices (ascending)."""
        position = {name: k for k, name in enumerate(self.kernel.names)}
        return tuple(sorted(position[name] for name in sources))

    def closure(
        self,
        sources: frozenset[str],
        constraint: Constraint | None = None,
        constraint_name: str = "tt",
        meter: BudgetMeter | None = None,
        mode: str = "scalar",
    ) -> "CompiledClosure":
        """Compute one canonical-pair closure in this process.

        ``mode`` selects the kernel: ``"scalar"`` runs the per-pair loop
        above, ``"bitset"`` the bulk frontier kernel
        (:class:`~repro.core.bitset.BitsetKernel`).  Both produce the
        identical ``order``/parents sequence — the mode only changes how
        fast it is computed and is recorded as the closure's
        :attr:`~CompiledClosure.kernel_path` for provenance.
        """
        if mode == "bitset":
            runner = self.bitset_kernel().closure
            kernel_path = "compiled-bitset"
        else:
            runner = self.kernel.closure
            kernel_path = "compiled"
        if not obs.is_enabled():
            order, parents = runner(
                self.source_indices(sources), self.sat_ids(constraint), meter
            )
            return CompiledClosure(
                self, sources, constraint_name, order, parents, kernel_path
            )
        stats: dict[str, int] = {}
        with obs.span(
            "kernel.closure",
            sources=",".join(sorted(sources)),
            constraint=constraint_name,
            kernel=kernel_path,
        ):
            try:
                order, parents = runner(
                    self.source_indices(sources),
                    self.sat_ids(constraint),
                    meter,
                    stats,
                )
            finally:
                _emit_kernel_stats(stats)
        return CompiledClosure(
            self, sources, constraint_name, order, parents, kernel_path
        )


class CompiledClosure:
    """A canonical unordered-pair closure in integer form.

    The compiled analogue of :class:`~repro.core.engine.PairClosure`:
    ``order`` lists encoded pairs in BFS (shortest-path) order and
    ``parents`` packs predecessor pointers, so every target — single or
    set-valued — is answered by integer column comparisons, and decoding
    to ``State`` objects happens only when a witness is materialized.
    """

    __slots__ = (
        "compiled",
        "sources",
        "constraint_name",
        "order",
        "parents",
        "kernel_path",
        "_first_diff",
    )

    def __init__(
        self,
        compiled: CompiledSystem,
        sources: frozenset[str],
        constraint_name: str,
        order: array,
        parents: Mapping[int, int],
        kernel_path: str = "compiled",
        first_diff: Mapping[str, int] | None = None,
    ) -> None:
        self.compiled = compiled
        self.sources = sources
        self.constraint_name = constraint_name
        self.order = order
        self.parents = parents
        self.kernel_path = kernel_path
        # A persistent-store row may carry the first-differing scan it
        # computed before persisting; adopting it here skips the
        # re-scan on warm starts.
        self._first_diff = dict(first_diff) if first_diff is not None else None

    def __len__(self) -> int:
        return len(self.order)

    # -- queries --------------------------------------------------------------

    def first_differing(self) -> Mapping[str, int]:
        """For each object name, the earliest reachable pair differing
        there (one integer sweep over the BFS order, cached).  A name
        absent from the mapping is one no reachable pair distinguishes.

        Large closures are scanned as vectorized column comparisons
        (:func:`repro.core.bitset.first_differing_scan`); small ones, or
        NumPy-less runs, fall through to the scalar sweep — same result
        either way."""
        if self._first_diff is None:
            kernel = self.compiled.kernel
            scanned = bitset.first_differing_scan(kernel, self.order)
            if scanned is not None:
                self._first_diff = scanned
                return self._first_diff
            n = kernel.n
            pending = list(zip(kernel.names, kernel.columns))
            first: dict[str, int] = {}
            for pair in self.order:
                i, j = divmod(pair, n)
                if i == j:
                    continue
                found = False
                for name, column in pending:
                    if column[i] != column[j]:
                        first[name] = pair
                        found = True
                if found:
                    pending = [nc for nc in pending if nc[0] not in first]
                    if not pending:
                        break
            self._first_diff = first
        return self._first_diff

    def touched_states(self) -> bytes:
        """The closure's *read set* as a little-endian state bitset: the
        ids appearing as a component of some reachable pair.  The BFS
        read each operation's successor table exactly at these ids, so a
        modified system whose changed entries avoid them replays this
        closure bit-identically — this is the provenance the persistent
        store records for delta invalidation (docs/FORMALISM.md,
        "Persistent memoization")."""
        return bitset.touched_scan(self.compiled.kernel.n, self.order)

    def first_differing_at_all(self, targets: Iterable[str]) -> int | None:
        """The earliest reachable pair differing at *every* object of the
        target set (Def 5-5/5-7), or ``None``."""
        kernel = self.compiled.kernel
        first = self.first_differing()
        target_list = sorted(targets)
        if not all(t in first for t in target_list):
            return None
        handled, code = bitset.first_differing_at_all_scan(
            kernel, self.order, target_list
        )
        if handled:
            return code
        column_of = dict(zip(kernel.names, kernel.columns))
        cols = [column_of[t] for t in target_list]
        n = kernel.n
        for pair in self.order:
            i, j = divmod(pair, n)
            for column in cols:
                if column[i] == column[j]:
                    break
            else:
                return pair
        return None

    # -- decoding -------------------------------------------------------------

    def witness_path(
        self, pair: int
    ) -> tuple[tuple[str, ...], tuple[State, State]]:
        """The operation names leading from a Def 2-8 initial pair to
        ``pair``, plus that initial pair decoded to ``State`` objects."""
        kernel = self.compiled.kernel
        n_ops = len(kernel.op_names) or 1
        ops: list[str] = []
        cursor = pair
        while True:
            packed = self.parents[cursor]
            if packed < 0:
                break
            cursor, d = divmod(packed, n_ops)
            ops.append(kernel.op_names[d])
        ops.reverse()
        i, j = divmod(cursor, kernel.n)
        states = self.compiled.states
        return tuple(ops), (states[i], states[j])

    def decode_pair(self, pair: int) -> tuple[State, State]:
        i, j = divmod(pair, self.compiled.kernel.n)
        states = self.compiled.states
        return (states[i], states[j])

    def pairs(self) -> Iterator[tuple[State, State]]:
        """Decode the whole closure in BFS order (API-boundary use only —
        this materializes the Python objects the kernel avoids)."""
        for pair in self.order:
            yield self.decode_pair(pair)


# -- process-pool plumbing ----------------------------------------------------
#
# The worker side of DependencyEngine._warm's process fan-out: the kernel
# (and the per-warm sat ids / budget limits) are shipped once via the pool
# initializer; each task is then a (task index, source column indices)
# tuple, and the result is the raw (order, parents) integer closure,
# decoded in the parent.  The task index feeds the fault-injection seam
# (repro.core.faults) and labels worker-side budget trips.
#
# The kernel payload may also be a shared-memory handle (anything with an
# ``attach()`` method — see repro.core.shm.KernelHandle): the worker then
# maps the parent's table pages instead of unpickling per-process copies,
# and parks the block in a module global so the memoryview casts stay
# valid for the worker's lifetime.

_WORKER_KERNEL: CompiledKernel | None = None
_WORKER_SHM = None
_WORKER_BITSET = None
_WORKER_MODE: str = "scalar"
_WORKER_SAT_IDS: array | None = None
_WORKER_LIMITS: tuple[float | None, int | None, int | None] | None = None


def _emit_kernel_stats(stats: dict[str, int]) -> None:
    """Publish one traced BFS run's counters.  ``stats`` may be partial
    when the budget tripped mid-sweep — only the keys the kernel managed
    to write are emitted.  ``levels`` is written by the bulk kernel
    only (the scalar loop has no level barrier to count)."""
    if "expansions" in stats:
        obs.count("kernel.pair_expansions", stats["expansions"])
    if "discovered" in stats:
        obs.count("kernel.pairs_discovered", stats["discovered"])
    if "frontier_high_water" in stats:
        obs.gauge_max("kernel.frontier_high_water", stats["frontier_high_water"])
    if "levels" in stats:
        obs.count("kernel.bitset.levels", stats["levels"])


def _worker_init(
    kernel,
    sat_ids: array | None,
    limits: tuple[float | None, int | None, int | None] | None = None,
    telemetry: bool = False,
    mode: str = "scalar",
) -> None:
    global _WORKER_KERNEL, _WORKER_SHM, _WORKER_BITSET, _WORKER_MODE
    global _WORKER_SAT_IDS, _WORKER_LIMITS
    from repro.core.signals import reset_inherited_signals

    reset_inherited_signals()
    if hasattr(kernel, "attach"):
        _WORKER_KERNEL, _WORKER_SHM = kernel.attach()
    else:
        _WORKER_KERNEL = kernel
        _WORKER_SHM = None
    _WORKER_MODE = mode
    _WORKER_BITSET = (
        bitset.BitsetKernel(_WORKER_KERNEL) if mode == "bitset" else None
    )
    _WORKER_SAT_IDS = sat_ids
    _WORKER_LIMITS = limits
    if telemetry:
        obs.enable()


def _worker_closure(
    task: tuple[int, tuple[int, ...]]
) -> tuple[array, Mapping[int, int], obs.telemetry.Batch | None]:
    """One closure in a pool worker.  The third element is the worker's
    telemetry batch (spans + counters accumulated since the previous
    task), shipped home for :func:`repro.obs.absorb_batch` — or ``None``
    when telemetry is off, keeping the result stream byte-identical to
    the untraced path."""
    assert _WORKER_KERNEL is not None, "worker pool initializer did not run"
    runner = (
        _WORKER_BITSET.closure if _WORKER_BITSET is not None else _WORKER_KERNEL.closure
    )
    index, source_indices = task
    faults.inject("worker", index)
    meter = None
    if _WORKER_LIMITS is not None:
        budget = ExecutionBudget.from_limits(_WORKER_LIMITS)
        meter = budget.start(f"worker closure #{index}")
    if not obs.is_enabled():
        order, parents = runner(source_indices, _WORKER_SAT_IDS, meter)
        return order, parents, None
    stats: dict[str, int] = {}
    with obs.span("worker.closure", task=index):
        try:
            order, parents = runner(source_indices, _WORKER_SAT_IDS, meter, stats)
        finally:
            _emit_kernel_stats(stats)
    return order, parents, obs.export_batch()
