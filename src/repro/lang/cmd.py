"""Guarded-command bodies for operations.

The paper describes operations with guarded assignments, e.g.::

    delta1: if y.ptr = x then y.data <- x.data
    delta2: (flag <- tt; alpha <- x)

:class:`Command` is a tiny AST of such bodies.  Commands both *execute*
(against a state, producing a new state) and *expose structure*: targets
possibly written, expressions read, and guards.  Execution keeps operations
purely semantic; the structure is what the syntactic baselines
(:mod:`repro.baselines.taint`, flow-specification extraction) interpret.

Commands execute *simultaneously reading, sequentially writing*: a ``Seq``
applies its parts left to right, each seeing the writes of the previous —
matching the paper's ``(beta <- alpha; alpha <- -alpha)`` oscillator where
beta receives the *old* alpha.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.state import State
from repro.lang.expr import Expr, coerce


class Command:
    """Base class for command ASTs."""

    def run(self, state: State) -> State:
        raise NotImplementedError

    def writes(self) -> frozenset[str]:
        """Object names the command may write (over-approximation)."""
        raise NotImplementedError

    def reads(self) -> frozenset[str]:
        """Object names the command may read, including guards
        (over-approximation)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Skip(Command):
    """Do nothing."""

    def run(self, state: State) -> State:
        return state

    def writes(self) -> frozenset[str]:
        return frozenset()

    def reads(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign(Command):
    """``target <- expr``."""

    target: str
    expr: Expr

    def run(self, state: State) -> State:
        return state.replace(**{self.target: self.expr.eval(state)})

    def writes(self) -> frozenset[str]:
        return frozenset([self.target])

    def reads(self) -> frozenset[str]:
        return self.expr.reads()

    def __repr__(self) -> str:
        return f"{self.target} <- {self.expr!r}"


@dataclass(frozen=True)
class Seq(Command):
    """``(c1; c2; ...)`` — left to right, later parts see earlier writes."""

    parts: tuple[Command, ...]

    def run(self, state: State) -> State:
        for part in self.parts:
            state = part.run(state)
        return state

    def writes(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.writes()
        return out

    def reads(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.reads()
        return out

    def __repr__(self) -> str:
        return "(" + "; ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class If(Command):
    """``if guard then then_cmd [else else_cmd]``."""

    guard: Expr
    then_cmd: Command
    else_cmd: Command

    def run(self, state: State) -> State:
        if self.guard.eval(state):
            return self.then_cmd.run(state)
        return self.else_cmd.run(state)

    def writes(self) -> frozenset[str]:
        return self.then_cmd.writes() | self.else_cmd.writes()

    def reads(self) -> frozenset[str]:
        # The guard is read; branch bodies may read.  (Implicit flows from
        # the guard to the branch targets are a *flow* notion, handled by
        # the baselines, not a read/write notion.)
        return self.guard.reads() | self.then_cmd.reads() | self.else_cmd.reads()

    def __repr__(self) -> str:
        if isinstance(self.else_cmd, Skip):
            return f"if {self.guard!r} then {self.then_cmd!r}"
        return f"if {self.guard!r} then {self.then_cmd!r} else {self.else_cmd!r}"


def skip() -> Skip:
    return Skip()


def assign(target: str, expr: object) -> Assign:
    """``target <- expr`` (raw values are lifted to constants)."""
    return Assign(target, coerce(expr))


def seq(*parts: Command) -> Command:
    """Sequence commands; a singleton collapses to itself."""
    if not parts:
        return Skip()
    if len(parts) == 1:
        return parts[0]
    return Seq(tuple(parts))


def when(guard: object, then_cmd: Command, else_cmd: Command | None = None) -> If:
    """``if guard then then_cmd else else_cmd`` with an optional else."""
    return If(coerce(guard), then_cmd, else_cmd if else_cmd is not None else Skip())
