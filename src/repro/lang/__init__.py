"""DSL for defining computational systems: expressions, commands, builders."""

from repro.lang.builders import SystemBuilder
from repro.lang.cmd import Assign, Command, If, Seq, Skip, assign, seq, skip, when
from repro.lang.expr import (
    Apply,
    BinOp,
    Const,
    Expr,
    IfExpr,
    UnaryOp,
    Var,
    apply,
    coerce,
    const,
    if_expr,
    var,
)
from repro.lang.ops import (
    StructuredOperation,
    assign_op,
    guarded_assign_op,
    op,
)

__all__ = [
    "Apply",
    "Assign",
    "BinOp",
    "Command",
    "Const",
    "Expr",
    "If",
    "IfExpr",
    "Seq",
    "Skip",
    "StructuredOperation",
    "SystemBuilder",
    "UnaryOp",
    "Var",
    "apply",
    "assign",
    "assign_op",
    "coerce",
    "const",
    "guarded_assign_op",
    "if_expr",
    "op",
    "seq",
    "skip",
    "var",
    "when",
]
