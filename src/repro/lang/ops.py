"""Operation combinators: build named, inspectable operations from commands.

A :class:`StructuredOperation` is an ordinary
:class:`~repro.core.system.Operation` that additionally carries its
:class:`~repro.lang.cmd.Command` body.  Semantic analyses (strong
dependency) ignore the body; syntactic analyses (taint, flow extraction)
interpret it.

The constructors here let the paper's operations transcribe directly::

    delta1 = op("delta1", when(var("q"), assign("m", var("alpha"))))
    delta2 = op("delta2", when(~var("q"), assign("beta", var("m"))))
"""

from __future__ import annotations

from repro.core.system import Operation
from repro.lang.cmd import Command, assign as _assign, seq, when
from repro.lang.expr import coerce


class StructuredOperation(Operation):
    """An operation whose body is a :class:`Command` AST."""

    __slots__ = ("command",)

    def __init__(self, name: str, command: Command, description: str = "") -> None:
        self.command = command
        super().__init__(
            name, command.run, description=description or repr(command)
        )

    def __repr__(self) -> str:
        return f"StructuredOperation({self.name!r}: {self.command!r})"

    def writes(self) -> frozenset[str]:
        return self.command.writes()

    def reads(self) -> frozenset[str]:
        return self.command.reads()


def op(name: str, command: Command, description: str = "") -> StructuredOperation:
    """Wrap a command as a named operation."""
    return StructuredOperation(name, command, description)


def assign_op(name: str, target: str, expr: object) -> StructuredOperation:
    """``name: target <- expr``."""
    return StructuredOperation(name, _assign(target, expr))


def guarded_assign_op(
    name: str, guard: object, target: str, expr: object
) -> StructuredOperation:
    """``name: if guard then target <- expr`` — the most common paper shape."""
    return StructuredOperation(name, when(coerce(guard), _assign(target, expr)))


__all__ = [
    "StructuredOperation",
    "op",
    "assign_op",
    "guarded_assign_op",
    "seq",
    "when",
]
