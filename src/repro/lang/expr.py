"""A tiny expression language over object names.

Operations in the paper are written in "an informal programming-like
language" (section 1.2), e.g.::

    delta:  if m then beta <- alpha

This module provides the expression half of an executable version of that
language.  Expressions evaluate against a :class:`~repro.core.state.State`
and support Python operator overloading, so paper operations transcribe
almost verbatim::

    >>> from repro.lang.expr import var, const
    >>> alpha, beta = var("alpha"), var("beta")
    >>> e = (alpha + const(1)) % const(4)
    >>> from repro.core.state import Space
    >>> sp = Space({"alpha": range(4), "beta": range(4)})
    >>> e.eval(sp.state(alpha=3, beta=0))
    0

Expressions are *inspectable*: :meth:`Expr.reads` returns the object names
an expression mentions, which the syntactic baselines (Denning-style flow
analysis, taint tracking) rely on.
"""

from __future__ import annotations

import operator
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.errors import EvaluationError
from repro.core.state import State, Value


class Expr:
    """Base class for expressions.  Subclasses implement :meth:`eval` and
    :meth:`reads`."""

    def eval(self, state: State) -> Value:
        raise NotImplementedError

    def reads(self) -> frozenset[str]:
        """Object names this expression may read."""
        raise NotImplementedError

    # -- operator sugar -------------------------------------------------------

    def _bin(self, other: object, op: Callable[[Value, Value], Value], sym: str) -> Expr:
        return BinOp(self, coerce(other), op, sym)

    def _rbin(self, other: object, op: Callable[[Value, Value], Value], sym: str) -> Expr:
        return BinOp(coerce(other), self, op, sym)

    def __add__(self, other: object) -> Expr:
        return self._bin(other, operator.add, "+")

    def __radd__(self, other: object) -> Expr:
        return self._rbin(other, operator.add, "+")

    def __sub__(self, other: object) -> Expr:
        return self._bin(other, operator.sub, "-")

    def __rsub__(self, other: object) -> Expr:
        return self._rbin(other, operator.sub, "-")

    def __mul__(self, other: object) -> Expr:
        return self._bin(other, operator.mul, "*")

    def __rmul__(self, other: object) -> Expr:
        return self._rbin(other, operator.mul, "*")

    def __mod__(self, other: object) -> Expr:
        return self._bin(other, operator.mod, "%")

    def __floordiv__(self, other: object) -> Expr:
        return self._bin(other, operator.floordiv, "//")

    def __eq__(self, other: object) -> Expr:  # type: ignore[override]
        return self._bin(other, operator.eq, "==")

    def __ne__(self, other: object) -> Expr:  # type: ignore[override]
        return self._bin(other, operator.ne, "!=")

    def __lt__(self, other: object) -> Expr:
        return self._bin(other, operator.lt, "<")

    def __le__(self, other: object) -> Expr:
        return self._bin(other, operator.le, "<=")

    def __gt__(self, other: object) -> Expr:
        return self._bin(other, operator.gt, ">")

    def __ge__(self, other: object) -> Expr:
        return self._bin(other, operator.ge, ">=")

    def __and__(self, other: object) -> Expr:
        return BinOp(self, coerce(other), lambda a, b: bool(a) and bool(b), "and")

    def __or__(self, other: object) -> Expr:
        return BinOp(self, coerce(other), lambda a, b: bool(a) or bool(b), "or")

    def __invert__(self) -> Expr:
        return UnaryOp(self, lambda a: not a, "not")

    def __neg__(self) -> Expr:
        return UnaryOp(self, operator.neg, "-")

    def __hash__(self) -> int:  # __eq__ is overloaded, restore hashability
        return id(self)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A reference to an object's value: ``sigma.name``."""

    name: str

    def eval(self, state: State) -> Value:
        try:
            return state[self.name]
        except KeyError:
            raise EvaluationError(f"unknown object {self.name!r}") from None

    def reads(self) -> frozenset[str]:
        return frozenset([self.name])

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal value."""

    value: Value

    def eval(self, state: State) -> Value:
        return self.value

    def reads(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    left: Expr
    right: Expr
    fn: Callable[[Value, Value], Value]
    symbol: str

    def eval(self, state: State) -> Value:
        try:
            return self.fn(self.left.eval(state), self.right.eval(state))
        except (TypeError, ZeroDivisionError) as exc:
            raise EvaluationError(f"{self!r}: {exc}") from exc

    def reads(self) -> frozenset[str]:
        return self.left.reads() | self.right.reads()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


@dataclass(frozen=True, eq=False)
class UnaryOp(Expr):
    operand: Expr
    fn: Callable[[Value], Value]
    symbol: str

    def eval(self, state: State) -> Value:
        try:
            return self.fn(self.operand.eval(state))
        except TypeError as exc:
            raise EvaluationError(f"{self!r}: {exc}") from exc

    def reads(self) -> frozenset[str]:
        return self.operand.reads()

    def __repr__(self) -> str:
        return f"({self.symbol} {self.operand!r})"


@dataclass(frozen=True, eq=False)
class IfExpr(Expr):
    """Conditional expression: ``then_value if cond else else_value``."""

    cond: Expr
    then_value: Expr
    else_value: Expr

    def eval(self, state: State) -> Value:
        branch = self.then_value if self.cond.eval(state) else self.else_value
        return branch.eval(state)

    def reads(self) -> frozenset[str]:
        # Conservative: both branches plus the condition (the condition is
        # an *implicit* source in Denning's terminology).
        return self.cond.reads() | self.then_value.reads() | self.else_value.reads()

    def __repr__(self) -> str:
        return f"({self.then_value!r} if {self.cond!r} else {self.else_value!r})"


@dataclass(frozen=True, eq=False)
class Apply(Expr):
    """Escape hatch: apply an arbitrary Python function to sub-expressions.

    The reads-set is the union of the arguments' reads, so syntactic
    analyses remain sound as long as ``fn`` is a pure function of its
    arguments.
    """

    fn: Callable[..., Value]
    args: tuple[Expr, ...]
    symbol: str = "apply"

    def eval(self, state: State) -> Value:
        return self.fn(*(arg.eval(state) for arg in self.args))

    def reads(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.reads()
        return out

    def __repr__(self) -> str:
        return f"{self.symbol}({', '.join(map(repr, self.args))})"


def var(name: str) -> Var:
    """Shorthand constructor for :class:`Var`."""
    return Var(name)

def const(value: Value) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def coerce(value: object) -> Expr:
    """Lift a raw Python value to an expression; pass expressions through."""
    if isinstance(value, Expr):
        return value
    return Const(value)  # type: ignore[arg-type]


def if_expr(cond: object, then_value: object, else_value: object) -> IfExpr:
    """Conditional-expression constructor accepting raw values."""
    return IfExpr(coerce(cond), coerce(then_value), coerce(else_value))


def apply(fn: Callable[..., Value], *args: object, symbol: str = "apply") -> Apply:
    """Apply an arbitrary pure function to expressions."""
    return Apply(fn, tuple(coerce(a) for a in args), symbol)
