"""Fluent builder for small computational systems.

Most paper examples are a space of 2-4 small objects plus 1-3 guarded
operations.  :class:`SystemBuilder` keeps those definitions to a few lines::

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> b = SystemBuilder()
    >>> _ = b.booleans("m").integers("alpha", "beta", bits=2)
    >>> _ = b.op_if("delta", var("m"), "beta", var("alpha"))
    >>> system = b.build()
    >>> system.space.size
    32
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.constraints import Constraint
from repro.core.errors import SpaceError
from repro.core.state import Space, State, Value
from repro.core.system import Operation, System
from repro.lang.cmd import Command, assign, seq, when
from repro.lang.expr import coerce
from repro.lang.ops import StructuredOperation


class SystemBuilder:
    """Accumulates object domains and operations, then builds a
    :class:`~repro.core.system.System`."""

    def __init__(self) -> None:
        self._domains: dict[str, tuple[Value, ...]] = {}
        self._operations: list[Operation] = []

    # -- objects ----------------------------------------------------------------

    def obj(self, name: str, domain: Iterable[Value]) -> "SystemBuilder":
        """Declare one object with an explicit domain."""
        if name in self._domains:
            raise SpaceError(f"object {name!r} already declared")
        self._domains[name] = tuple(domain)
        return self

    def booleans(self, *names: str) -> "SystemBuilder":
        """Declare boolean objects."""
        for name in names:
            self.obj(name, (False, True))
        return self

    def integers(self, *names: str, bits: int = 2) -> "SystemBuilder":
        """Declare unsigned ``bits``-bit integer objects."""
        domain = tuple(range(2**bits))
        for name in names:
            self.obj(name, domain)
        return self

    def ranged(self, *names: str, lo: int, hi: int) -> "SystemBuilder":
        """Declare integer objects with domain ``lo..hi`` inclusive."""
        domain = tuple(range(lo, hi + 1))
        for name in names:
            self.obj(name, domain)
        return self

    # -- operations ---------------------------------------------------------------

    def operation(self, operation: Operation) -> "SystemBuilder":
        """Add a prebuilt operation."""
        self._operations.append(operation)
        return self

    def op_cmd(self, name: str, command: Command) -> "SystemBuilder":
        """Add an operation from a command body."""
        self._operations.append(StructuredOperation(name, command))
        return self

    def op_assign(self, name: str, target: str, expr: object) -> "SystemBuilder":
        """``name: target <- expr``."""
        return self.op_cmd(name, assign(target, expr))

    def op_if(
        self,
        name: str,
        guard: object,
        target: str,
        expr: object,
        else_expr: object | None = None,
    ) -> "SystemBuilder":
        """``name: if guard then target <- expr [else target <- else_expr]``."""
        then_cmd = assign(target, expr)
        else_cmd = assign(target, else_expr) if else_expr is not None else None
        return self.op_cmd(name, when(coerce(guard), then_cmd, else_cmd))

    def op_seq(self, name: str, *commands: Command) -> "SystemBuilder":
        """``name: (c1; c2; ...)``."""
        return self.op_cmd(name, seq(*commands))

    # -- products -------------------------------------------------------------------

    def space(self) -> Space:
        return Space(self._domains)

    def build(self, check_closed: bool = True) -> System:
        """Build the system.  Raises if no objects were declared."""
        return System(self.space(), self._operations, check_closed=check_closed)

    def constraint(self, fn, name: str = "phi") -> Constraint:
        """A constraint over this builder's space (handy in tests)."""
        return Constraint(self.space(), fn, name=name)

    def state(self, **values: Value) -> State:
        return self.space().state(**values)
