"""Command-line interface: information-flow queries on mini-language
programs.

Usage::

    python -m repro program FILE --var secret=0..3 --var public=0,1 \\
        --source secret --target public [--entry "secret <= 1"]

    python -m repro taint FILE --var ... --source secret

    python -m repro quantify FILE --var ... --source secret \\
        --target public [--capacity] [--json OUT.json]

``program`` decides exact strong dependency on the compiled flowchart
system (pair-graph, all histories) and prints a witness run when a flow
exists.  ``taint`` runs the syntactic taint closure for comparison.
``quantify`` computes the section 7.4 bits-transmitted measures (both
the equivocation and the averaged measure, optionally Blahut-Arimoto
channel capacity) on the compiled quantitative substrate, with JSON
output validating against ``docs/quantify.schema.json``.

Domains: ``name=lo..hi`` (integer range, inclusive), ``name=v1,v2,...``
(explicit integers), or ``name=bool``.

Resource governance: ``program`` accepts ``--budget-seconds`` and
``--budget-states``; when the governed search exhausts its budget the
verdict is ``UNKNOWN`` (exit code 3 — distinct from flow/1, no-flow/0
and error/2), with the partial-result snapshot printed.
``--execution-report`` appends the engine's execution log (expansions,
retries, pool degradations) to any outcome (``program`` and ``taint``).

Observability: ``--trace FILE`` (``program`` and ``taint``) enables the
telemetry collector for the run and writes a Chrome ``chrome://tracing``
JSON trace on exit — including the UNKNOWN/exit-3 path, so a
budget-exhausted run still explains where the time went.  ``repro stats
TRACE`` summarizes a written trace (per-span timing, counters, gauges).
``program`` verdicts also print their provenance line (kernel path, memo
outcome, budget state).

Persistence: ``--store PATH`` (or the ``REPRO_STORE`` environment
variable) attaches a disk-backed memo store, so a repeat query in a new
process is a row fetch instead of a recompute.  ``repro diff OLD NEW``
compares two versions of a program, reuses every closure the delta left
intact, and reports which verdicts changed (exit 1 when any did).
``repro stats --store PATH`` reports the store's contents.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Sequence

from repro import obs
from repro.baselines.taint import taint_closure
from repro.core.budget import (
    BudgetExceededError,
    CancellationToken,
    ExecutionBudget,
)
from repro.core.constraints import Constraint
from repro.core.engine import shared_engine
from repro.core.errors import ReproError
from repro.core.signals import EXIT_INTERRUPTED, interrupt_token
from repro.core.state import Value
from repro.systems.program import (
    build_program_system,
    parse_expr,
    program_transmits,
)

#: Exit code for a budget-exhausted (UNKNOWN) verdict.
EXIT_UNKNOWN = 3


def parse_domain(spec: str) -> tuple[str, tuple[Value, ...]]:
    """Parse one ``--var`` specification."""
    if "=" not in spec:
        raise argparse.ArgumentTypeError(
            f"--var needs name=domain, got {spec!r}"
        )
    name, _, body = spec.partition("=")
    name = name.strip()
    body = body.strip()
    if not name:
        raise argparse.ArgumentTypeError(f"empty variable name in {spec!r}")
    if body == "bool":
        return name, (False, True)
    if ".." in body:
        lo_text, _, hi_text = body.partition("..")
        try:
            lo, hi = int(lo_text), int(hi_text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad range in {spec!r}"
            ) from None
        if hi < lo:
            raise argparse.ArgumentTypeError(f"empty range in {spec!r}")
        return name, tuple(range(lo, hi + 1))
    try:
        values = tuple(int(part) for part in body.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad values in {spec!r}") from None
    if not values:
        raise argparse.ArgumentTypeError(f"no values in {spec!r}")
    return name, values


def _read_program(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _build(args: argparse.Namespace):
    source_text = _read_program(args.file)
    domains = dict(parse_domain(spec) for spec in args.var)
    return build_program_system(source_text, domains)


def _store_path(args: argparse.Namespace) -> str | None:
    """Resolve the persistent-store path: ``--store`` wins, then the
    ``REPRO_STORE`` environment variable, else no store."""
    return getattr(args, "store", None) or os.environ.get("REPRO_STORE") or None


def _attach_store(args: argparse.Namespace, ps) -> None:
    path = _store_path(args)
    if path:
        shared_engine(ps.system).attach_store(path)


def _parse_budget(
    args: argparse.Namespace,
    token: CancellationToken | None = None,
) -> ExecutionBudget | None:
    max_seconds = getattr(args, "budget_seconds", None)
    max_expanded = getattr(args, "budget_states", None)
    if max_seconds is None and max_expanded is None and token is None:
        return None
    return ExecutionBudget(
        max_seconds=max_seconds, max_expanded=max_expanded, token=token
    )


def _flush_on_interrupt(ps) -> None:
    """Persist already-completed closures after a cooperative interrupt,
    so the work a cancelled sweep did finish survives the exit (only
    meaningful when a store is attached)."""
    engine = shared_engine(ps.system)
    if engine.store is None:
        return
    written = engine.persist_memos()
    print(f"interrupted: flushed {written} completed memo(s) to the store",
          file=sys.stderr)


def _print_execution_report(ps) -> None:
    print(shared_engine(ps.system).execution_log.describe())


def _dump_cache_stats(args: argparse.Namespace, ps) -> None:
    """Write the shared engine's ``cache_stats()`` as JSON when
    ``--cache-stats FILE`` was given.  Runs in ``finally`` so the
    UNKNOWN/exit-3 path still reports what the caches held."""
    path = getattr(args, "cache_stats", None)
    if not path or ps is None:
        return
    import json

    stats = shared_engine(ps.system).cache_stats()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(stats, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"cache stats written: {path}", file=sys.stderr)


def _start_trace(args: argparse.Namespace) -> str | None:
    """Enable telemetry when ``--trace FILE`` was given; returns the
    target path (or ``None``)."""
    path = getattr(args, "trace", None)
    if path:
        obs.enable(reset=True)
    return path


def _finish_trace(path: str | None) -> None:
    """Write the collected trace.  Runs in ``finally`` so the exit-3
    (UNKNOWN) and error paths still produce a loadable trace."""
    if path:
        obs.export.write_chrome_trace(path)
        print(f"trace written: {path}", file=sys.stderr)


def cmd_program(args: argparse.Namespace) -> int:
    trace = _start_trace(args)
    try:
        return _run_program(args)
    finally:
        _finish_trace(trace)


def _run_program(args: argparse.Namespace) -> int:
    # The interrupt scope covers the build too: a Ctrl-C during system
    # construction cancels the token, and the governed search trips at
    # its first budget check (a second Ctrl-C force-kills as usual).
    with interrupt_token() as token:
        ps = _build(args)
        _attach_store(args, ps)
        try:
            return _decide_program(args, ps, token)
        finally:
            _dump_cache_stats(args, ps)


def _decide_program(
    args: argparse.Namespace, ps, token: CancellationToken | None = None
) -> int:
    entry = None
    if args.entry:
        expr = parse_expr(args.entry)
        entry = Constraint(
            ps.space, lambda s: bool(expr.eval(s)), name=args.entry
        )
    label = f" given {args.entry!r}" if args.entry else ""
    try:
        budget = _parse_budget(args, token)
        result = program_transmits(
            ps, {args.source}, args.target, entry, budget
        )
    except BudgetExceededError as exc:
        if exc.partial.reason == "cancelled":
            print(f"INTERRUPTED: {args.source} |>? {args.target}{label}")
            print(exc.partial.describe())
            _flush_on_interrupt(ps)
            if args.execution_report:
                _print_execution_report(ps)
            return EXIT_INTERRUPTED
        print(f"UNKNOWN: {args.source} |>? {args.target}{label}")
        print(exc.partial.describe())
        print("(rerun with a larger --budget-seconds/--budget-states "
              "to refine)")
        if args.execution_report:
            _print_execution_report(ps)
        return EXIT_UNKNOWN
    if result.provenance is not None:
        provenance_line = f"[{result.provenance.describe()}]"
    else:
        provenance_line = ""
    if result:
        print(f"FLOW: {args.source} |> {args.target}{label}")
        if provenance_line:
            print(provenance_line)
        print(result.witness.describe())
        if args.execution_report:
            _print_execution_report(ps)
        return 1
    print(f"NO FLOW: {args.source} cannot transmit to {args.target}{label}")
    if provenance_line:
        print(provenance_line)
    if args.execution_report:
        _print_execution_report(ps)
    return 0


def cmd_quantify(args: argparse.Namespace) -> int:
    trace = _start_trace(args)
    try:
        return _run_quantify(args)
    finally:
        _finish_trace(trace)


def _run_quantify(args: argparse.Namespace) -> int:
    with interrupt_token() as token:
        ps = _build(args)
        _attach_store(args, ps)
        try:
            return _decide_quantify(args, ps, token)
        finally:
            _dump_cache_stats(args, ps)


_QUANTIFY_MEASURES = (
    "source_entropy",
    "bits_transmitted",
    "equivocation",
    "bits_transmitted_averaged",
    "capacity",
)


def _write_quantify_json(args: argparse.Namespace, doc: dict) -> None:
    path = getattr(args, "json", None)
    if not path:
        return
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written: {path}", file=sys.stderr)


def _decide_quantify(
    args: argparse.Namespace, ps, token: CancellationToken | None = None
) -> int:
    from repro.core.system import History
    from repro.quantitative.compiled import QuantEngine

    entry = None
    if args.entry:
        expr = parse_expr(args.entry)
        entry = Constraint(
            ps.space, lambda s: bool(expr.eval(s)), name=args.entry
        )
    phi = ps.entry_constraint(entry)
    system = ps.system
    if args.history:
        names = [n.strip() for n in args.history.split(",") if n.strip()]
        history = system.history(*names)
    else:
        # Each operation once, in program order — one full run of a
        # straight-line flowchart.  Loops/branches need an explicit
        # --history.
        history = History(system.operations)
    sources = sorted(set(args.source))
    engine = shared_engine(system)
    doc = {
        "schema_version": 1,
        "program": args.file,
        "sources": sources,
        "target": args.target,
        "history": [op.name for op in history],
        "states": system.space.size,
        "verdict": "ok",
        "measures": dict.fromkeys(_QUANTIFY_MEASURES),
        "partial": None,
    }
    try:
        quant = QuantEngine(engine=engine, budget=_parse_budget(args, token))
        dist = quant.uniform(phi)
        doc["support"] = len(dist)
        measures = doc["measures"]
        measures["source_entropy"] = quant.source_entropy(dist, sources)
        measures["bits_transmitted"] = quant.bits_transmitted(
            dist, sources, args.target, history
        )
        measures["equivocation"] = (
            measures["source_entropy"] - measures["bits_transmitted"]
        )
        measures["bits_transmitted_averaged"] = (
            quant.bits_transmitted_averaged(
                dist, sources, args.target, history
            )
        )
        if args.capacity:
            measures["capacity"] = quant.capacity(
                dist, sources, args.target, history
            )
    except BudgetExceededError as exc:
        doc["verdict"] = "unknown"
        doc["measures"] = dict.fromkeys(_QUANTIFY_MEASURES)
        doc.setdefault("support", None)
        doc["partial"] = {
            "label": exc.partial.label,
            "reason": exc.partial.reason,
            "expanded": exc.partial.expanded,
            "discovered": exc.partial.discovered,
            "elapsed": exc.partial.elapsed,
        }
        if exc.partial.reason == "cancelled":
            print(f"INTERRUPTED: b({'+'.join(sources)} -> {args.target}) "
                  "cancelled by signal")
            print(exc.partial.describe())
            _flush_on_interrupt(ps)
            _write_quantify_json(args, doc)
            return EXIT_INTERRUPTED
        print(f"UNKNOWN: b({'+'.join(sources)} -> {args.target}) not "
              "determined within budget")
        print(exc.partial.describe())
        print("(rerun with a larger --budget-seconds/--budget-states "
              "to refine)")
        _write_quantify_json(args, doc)
        return EXIT_UNKNOWN
    measures = doc["measures"]
    print(f"quantify {'+'.join(sources)} -> {args.target} "
          f"over H={','.join(doc['history'])} "
          f"({doc['support']} of {doc['states']} states)")
    print(f"  source entropy:    {measures['source_entropy']:.6g} bits")
    print(f"  bits transmitted:  {measures['bits_transmitted']:.6g} "
          "(equivocation measure)")
    print(f"  equivocation:      {measures['equivocation']:.6g} bits")
    print(f"  averaged measure:  {measures['bits_transmitted_averaged']:.6g} "
          "bits")
    if measures["capacity"] is not None:
        print(f"  channel capacity:  {measures['capacity']:.6g} bits/use")
    _write_quantify_json(args, doc)
    return 0


def cmd_taint(args: argparse.Namespace) -> int:
    trace = _start_trace(args)
    ps = None
    try:
        ps = _build(args)
        tainted = taint_closure(ps.system, {args.source})
        print(f"taint closure from {args.source!r}:")
        for name in sorted(tainted):
            print(f"  {name}")
        if args.execution_report:
            _print_execution_report(ps)
        return 0
    finally:
        _dump_cache_stats(args, ps)
        _finish_trace(trace)


def _fmt_pctl(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1000.0:.3f}"


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarize a trace written by ``--trace`` (either format), a
    service access log (``{"type": "access"}`` JSONL), a flight-recorder
    dump (``--flight FILE``), and/or a persistent store's contents
    (``--store PATH``)."""
    import json

    from repro.analysis.report import Table

    if args.flight:
        with open(args.flight, encoding="utf-8") as handle:
            doc = json.load(handle)
        records = doc.get("flight", doc) if isinstance(doc, dict) else doc
        if not isinstance(records, list):
            print("error: not a flight dump", file=sys.stderr)
            return 2
        table = Table(
            ["trace", "reason", "status", "path", "ms", "spans"]
        )
        for rec in records:
            table.add(
                rec.get("trace", "?"),
                rec.get("reason", "?"),
                rec.get("status", "?"),
                rec.get("path", ""),
                "-" if rec.get("duration_ms") is None
                else f"{rec['duration_ms']:.1f}",
                len(rec.get("spans", [])),
            )
        print(table.render())
        for rec in records:
            spans = rec.get("spans", [])
            if not spans:
                continue
            print(f"\ntrace {rec.get('trace', '?')} "
                  f"[{rec.get('reason', '?')}]:")
            children: dict = {}
            for s in spans:
                children.setdefault(s.get("parent"), []).append(s)
            span_ids = {s.get("id") for s in spans}

            def walk(parent, depth: int) -> None:
                for s in sorted(
                    children.get(parent, []),
                    key=lambda s: s.get("ts_us", 0.0),
                ):
                    print(
                        f"  {'  ' * depth}{s['name']}  "
                        f"{s.get('dur_us', 0.0) / 1000.0:.3f}ms"
                        f"  pid={s.get('pid')}"
                    )
                    walk(s.get("id"), depth + 1)

            # Roots: no parent, or a parent outside the captured tree.
            roots = [
                s for s in spans
                if s.get("parent") is None
                or s.get("parent") not in span_ids
            ]
            for root in sorted(roots, key=lambda s: s.get("ts_us", 0.0)):
                print(
                    f"  {root['name']}  "
                    f"{root.get('dur_us', 0.0) / 1000.0:.3f}ms"
                    f"  pid={root.get('pid')}"
                )
                walk(root.get("id"), 1)
        if not args.trace_file and not args.store:
            return 0
    if args.store:
        from repro.core.store import PersistentStore

        store = PersistentStore(args.store)
        try:
            print(json.dumps(store.stats(), indent=2, sort_keys=True))
        finally:
            store.close()
        if not args.trace_file:
            return 0
    if not args.trace_file:
        print(
            "error: give a trace file and/or --store PATH (or --flight FILE)",
            file=sys.stderr,
        )
        return 2
    events = obs.export.load_trace(args.trace_file)
    summary = obs.export.aggregate(events)
    spans = sorted(
        summary["spans"].items(),
        key=lambda item: item[1]["total_us"],
        reverse=True,
    )
    if args.top:
        spans = spans[: args.top]
    table = Table(["span", "count", "total ms", "max ms"])
    for name, stat in spans:
        table.add(
            name,
            stat["count"],
            f"{stat['total_us'] / 1000.0:.3f}",
            f"{stat['max_us'] / 1000.0:.3f}",
        )
    if summary["spans"]:
        print(table.render())
    if summary["counters"]:
        counters = Table(["counter", "value"])
        for name in sorted(summary["counters"]):
            counters.add(name, summary["counters"][name])
        print(counters.render())
    if summary["gauges"]:
        gauges = Table(["gauge (high-water)", "value"])
        for name in sorted(summary["gauges"]):
            gauges.add(name, summary["gauges"][name])
        print(gauges.render())
    if summary.get("hists"):
        hists = Table(
            ["histogram", "count", "p50 ms", "p95 ms", "p99 ms", "mean ms"]
        )
        for name in sorted(summary["hists"]):
            stat = summary["hists"][name]
            mean = (
                stat["sum_seconds"] / stat["count"] if stat["count"] else 0.0
            )
            hists.add(
                name,
                stat["count"],
                _fmt_pctl(stat["p50"]),
                _fmt_pctl(stat["p95"]),
                _fmt_pctl(stat["p99"]),
                f"{mean * 1000.0:.3f}",
            )
        print(hists.render())
    if summary.get("access"):
        access = summary["access"]
        statuses = ", ".join(
            f"{status}:{count}"
            for status, count in sorted(access["statuses"].items())
        )
        print(
            f"access: {access['count']} requests "
            f"({access['traced']} traced)  [{statuses}]"
        )
        if "p50_ms" in access:
            print(
                f"access latency ms: p50={access['p50_ms']:.3f} "
                f"p95={access['p95_ms']:.3f} p99={access['p99_ms']:.3f}"
            )
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Compare two versions of a program: which verdicts changed?

    Builds both flowchart systems over the same variable domains, reuses
    every closure whose touched states avoid the delta (recomputing only
    the invalidated frontier — against a ``--store``, surviving closures
    are carried across as row fetches), and reports the flipped
    verdicts.  Exit 0 when no verdict changed, 1 when any did.
    """
    from repro.analysis.diff import diff_systems

    domains = dict(parse_domain(spec) for spec in args.var)
    ps_old = build_program_system(_read_program(args.old_file), domains)
    ps_new = build_program_system(_read_program(args.new_file), domains)
    extra_old = extra_new = None
    if args.entry:
        expr = parse_expr(args.entry)
        extra_old = Constraint(
            ps_old.space, lambda s: bool(expr.eval(s)), name=args.entry
        )
        extra_new = Constraint(
            ps_new.space, lambda s: bool(expr.eval(s)), name=args.entry
        )
    phi_old = ps_old.entry_constraint(extra_old)
    phi_new = ps_new.entry_constraint(extra_new)
    report = diff_systems(
        ps_old.system,
        ps_new.system,
        constraints=[(phi_old, phi_new)],
        sources=[[name] for name in sorted(domains)],
        store=_store_path(args),
    )
    print(report.describe())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json_text())
            handle.write("\n")
        print(f"diff report written: {args.json}", file=sys.stderr)
    return 1 if report.changed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived analysis service (see docs/SERVICE.md)."""
    import asyncio

    from repro.serve.app import ReproServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        store=_store_path(args),
        workers=args.workers,
        max_concurrency=args.max_concurrency,
        max_queue=args.max_queue,
        default_deadline_ms=args.default_deadline_ms,
        default_queue_wait_ms=args.default_queue_wait_ms,
        drain_grace_seconds=args.drain_grace_seconds,
        access_log=args.access_log,
        flight_capacity=args.flight_capacity,
        slow_request_ms=args.slow_request_ms,
    )
    server = ReproServer(config)
    asyncio.run(server.run(port_file=args.port_file))
    return 0


def cmd_flows(args: argparse.Namespace) -> int:
    """Print the exact information-flow graph of a program as dot."""
    from repro.analysis.graph import exact_flow_graph, render_dot

    ps = _build(args)
    entry = None
    if args.entry:
        expr = parse_expr(args.entry)
        entry = Constraint(
            ps.space, lambda s: bool(expr.eval(s)), name=args.entry
        )
    phi = ps.entry_constraint(entry)
    graph = exact_flow_graph(ps.system, phi)
    print(render_dot(graph))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strong-dependency information-flow analysis "
        "(Cohen, SOSP 1977)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, need_target: bool) -> None:
        p.add_argument("file", help="mini-language program file, or - for stdin")
        p.add_argument(
            "--var",
            action="append",
            default=[],
            metavar="NAME=DOMAIN",
            help="variable domain: lo..hi, v1,v2,..., or bool (repeatable)",
        )
        p.add_argument("--source", required=True, help="source object A")
        if need_target:
            p.add_argument("--target", required=True, help="target object beta")

    p_program = sub.add_parser(
        "program", help="exact strong dependency on the compiled flowchart"
    )
    common(p_program, need_target=True)
    p_program.add_argument(
        "--entry",
        help="entry assertion (mini-language boolean expression)",
    )
    p_program.add_argument(
        "--budget-seconds",
        type=float,
        metavar="S",
        help="wall-clock budget for the governed search; exhaustion "
        "prints UNKNOWN and exits 3",
    )
    p_program.add_argument(
        "--budget-states",
        type=int,
        metavar="N",
        help="max pair-node expansions for the governed search; "
        "exhaustion prints UNKNOWN and exits 3",
    )
    p_program.add_argument(
        "--execution-report",
        action="store_true",
        help="print the engine's execution log (expansions, retries, "
        "degradations) after the verdict",
    )
    p_program.add_argument(
        "--trace",
        metavar="FILE",
        help="enable telemetry and write a Chrome trace JSON on exit "
        "(including the UNKNOWN/exit-3 path); summarize with "
        "`repro stats FILE`",
    )
    p_program.add_argument(
        "--cache-stats",
        metavar="FILE",
        help="write the engine's cache statistics (sizes, capacities, "
        "evictions) as JSON on exit",
    )
    p_program.add_argument(
        "--store",
        metavar="PATH",
        help="attach a persistent memo store (sqlite) so repeat queries "
        "in new processes start warm; REPRO_STORE is the env fallback",
    )
    p_program.set_defaults(handler=cmd_program)

    p_quantify = sub.add_parser(
        "quantify",
        help="section 7.4 bits-transmitted measures on the compiled "
        "quantitative substrate",
    )
    p_quantify.add_argument(
        "file", help="mini-language program file, or - for stdin"
    )
    p_quantify.add_argument(
        "--var",
        action="append",
        default=[],
        metavar="NAME=DOMAIN",
        help="variable domain: lo..hi, v1,v2,..., or bool (repeatable)",
    )
    p_quantify.add_argument(
        "--source",
        action="append",
        required=True,
        metavar="NAME",
        help="source object (repeatable: the set A)",
    )
    p_quantify.add_argument(
        "--target", required=True, help="target object beta"
    )
    p_quantify.add_argument(
        "--entry",
        help="entry assertion (mini-language boolean expression); the "
        "initial distribution is uniform over sat(entry & pc=entry)",
    )
    p_quantify.add_argument(
        "--history",
        metavar="OP1,OP2,...",
        help="operation names of the fixed history H (default: every "
        "operation once, in program order)",
    )
    p_quantify.add_argument(
        "--capacity",
        action="store_true",
        help="also solve the Blahut-Arimoto channel capacity (one "
        "channel input per source-value combination; opt-in because "
        "the input set is the product of the source domains)",
    )
    p_quantify.add_argument(
        "--json",
        metavar="FILE",
        help="also write the report as JSON (docs/quantify.schema.json)",
    )
    p_quantify.add_argument(
        "--budget-seconds",
        type=float,
        metavar="S",
        help="wall-clock budget for the governed sweeps; exhaustion "
        "prints UNKNOWN (null measures) and exits 3",
    )
    p_quantify.add_argument(
        "--budget-states",
        type=int,
        metavar="N",
        help="max states scanned by the governed sweeps; exhaustion "
        "prints UNKNOWN (null measures) and exits 3",
    )
    p_quantify.add_argument(
        "--trace",
        metavar="FILE",
        help="enable telemetry and write a Chrome trace JSON on exit",
    )
    p_quantify.add_argument(
        "--cache-stats",
        metavar="FILE",
        help="write the engine's cache statistics as JSON on exit",
    )
    p_quantify.add_argument(
        "--store",
        metavar="PATH",
        help="attach a persistent memo store (sqlite); composed history "
        "tables and Def 1-1 buckets are reused across processes "
        "(REPRO_STORE is the env fallback)",
    )
    p_quantify.set_defaults(handler=cmd_quantify)

    p_taint = sub.add_parser(
        "taint", help="syntactic taint closure (baseline)"
    )
    common(p_taint, need_target=False)
    p_taint.add_argument(
        "--execution-report",
        action="store_true",
        help="print the engine's execution log after the closure",
    )
    p_taint.add_argument(
        "--trace",
        metavar="FILE",
        help="enable telemetry and write a Chrome trace JSON on exit",
    )
    p_taint.add_argument(
        "--cache-stats",
        metavar="FILE",
        help="write the engine's cache statistics as JSON on exit",
    )
    p_taint.set_defaults(handler=cmd_taint)

    p_stats = sub.add_parser(
        "stats",
        help="summarize a telemetry trace written by --trace and/or a "
        "persistent store",
    )
    p_stats.add_argument(
        "trace_file",
        nargs="?",
        default=None,
        help="Chrome trace JSON or JSONL file to summarize",
    )
    p_stats.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="show only the N spans with the largest total time",
    )
    p_stats.add_argument(
        "--store",
        metavar="PATH",
        help="report a persistent memo store's contents (rows, bytes, "
        "hit counters) as JSON",
    )
    p_stats.add_argument(
        "--flight",
        metavar="FILE",
        help="pretty-print a flight-recorder dump (the JSON from "
        "GET /stats?flight=1): one row per retained failure plus its "
        "span tree",
    )
    p_stats.set_defaults(handler=cmd_stats)

    p_diff = sub.add_parser(
        "diff",
        help="compare two program versions: reuse surviving closures, "
        "recompute the invalidated frontier, report changed verdicts",
    )
    p_diff.add_argument(
        "old_file", help="old program version, or - for stdin"
    )
    p_diff.add_argument("new_file", help="new program version")
    p_diff.add_argument(
        "--var",
        action="append",
        default=[],
        metavar="NAME=DOMAIN",
        help="variable domain: lo..hi, v1,v2,..., or bool (repeatable; "
        "shared by both versions)",
    )
    p_diff.add_argument(
        "--entry",
        help="entry assertion applied to both versions",
    )
    p_diff.add_argument(
        "--store",
        metavar="PATH",
        help="persistent memo store shared by both versions "
        "(REPRO_STORE is the env fallback)",
    )
    p_diff.add_argument(
        "--json",
        metavar="FILE",
        help="also write the report as JSON (docs/diff.schema.json)",
    )
    p_diff.set_defaults(handler=cmd_diff)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived HTTP/JSON analysis service with warm sessions, "
        "admission control and graceful drain (docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 = ephemeral; see --port-file)",
    )
    p_serve.add_argument(
        "--port-file",
        metavar="FILE",
        help="write the bound port here once listening (for scripts "
        "that start the server on an ephemeral port)",
    )
    p_serve.add_argument(
        "--store",
        metavar="PATH",
        help="persistent memo store shared by all sessions; a restarted "
        "server answers warm from it (REPRO_STORE is the env fallback)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="executor threads running engine work (default 4)",
    )
    p_serve.add_argument(
        "--max-concurrency",
        type=int,
        default=4,
        help="requests executing at once; more wait in the queue",
    )
    p_serve.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="requests allowed to wait; beyond this, shed with 429",
    )
    p_serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=5000.0,
        help="per-request deadline when the quota omits one",
    )
    p_serve.add_argument(
        "--default-queue-wait-ms",
        type=float,
        default=1000.0,
        help="per-request queue-wait quota when the quota omits one",
    )
    p_serve.add_argument(
        "--drain-grace-seconds",
        type=float,
        default=5.0,
        help="SIGTERM drain: seconds to let in-flight requests finish "
        "before cancelling their budgets",
    )
    p_serve.add_argument(
        "--access-log",
        metavar="FILE",
        help="append one JSON line per request (trace id, status, "
        "queue wait) here; always also kept in a bounded in-memory "
        "ring served under /stats",
    )
    p_serve.add_argument(
        "--flight-capacity",
        type=int,
        default=64,
        help="failed-request span trees retained for post-mortems "
        "(GET /stats?flight=1; default 64)",
    )
    p_serve.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        help="also flight-record successful requests slower than this",
    )
    p_serve.set_defaults(handler=cmd_serve)

    p_flows = sub.add_parser(
        "flows", help="exact information-flow graph (GraphViz dot)"
    )
    p_flows.add_argument(
        "file", help="mini-language program file, or - for stdin"
    )
    p_flows.add_argument(
        "--var",
        action="append",
        default=[],
        metavar="NAME=DOMAIN",
        help="variable domain: lo..hi, v1,v2,..., or bool (repeatable)",
    )
    p_flows.add_argument(
        "--entry",
        help="entry assertion (mini-language boolean expression)",
    )
    p_flows.set_defaults(handler=cmd_flows)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
