"""Admission control: bounded queueing mapped onto execution budgets.

The overload posture in one sentence: **shed early, never queue
unboundedly, and make whatever is admitted finish inside its deadline
or trip to an honest UNKNOWN**.  Concretely:

- at most ``max_concurrency`` requests execute engine work at once
  (an :class:`asyncio.Semaphore` gating the executor),
- at most ``max_queue`` more may *wait* for a slot; request number
  ``max_queue + 1`` is shed immediately with **429** (the client should
  back off — the queue is full, waiting would only add latency),
- a waiter that does not get a slot within its ``queue_wait_ms`` quota
  is shed with **503** (the server is alive but saturated),
- queue time is charged against the request's deadline: the
  :class:`ExecutionBudget` a request finally runs under gets only the
  *remaining* wall clock, so a request admitted late trips early rather
  than blowing through its client's timeout.

Quotas arrive per-request (the ``quota`` object in the JSON body) and
fall back to server defaults; they map 1:1 onto the PR-2 budget fields,
so the engine needs no serve-specific governance.
"""

from __future__ import annotations

import asyncio
import time
from contextlib import asynccontextmanager
from dataclasses import dataclass

from repro import obs
from repro.core.budget import CancellationToken, ExecutionBudget

#: Budget check cadence under the service: tighter than the CLI default
#: (256) because deadline propagation is the whole point here — a
#: cancelled token must trip within a few milliseconds of work.
_SERVE_CHECK_INTERVAL = 64


class ShedError(Exception):
    """A request refused by admission control (never started)."""

    def __init__(self, status: int, reason: str) -> None:
        self.status = status
        self.reason = reason
        super().__init__(reason)


@dataclass(frozen=True)
class RequestQuota:
    """Per-request resource quota, from the ``quota`` JSON object."""

    deadline_ms: float
    max_states: int | None
    queue_wait_ms: float

    @classmethod
    def from_doc(
        cls,
        doc: dict,
        default_deadline_ms: float,
        default_queue_wait_ms: float,
        default_max_states: int | None = None,
    ) -> "RequestQuota":
        quota = doc.get("quota") or {}
        if not isinstance(quota, dict):
            raise ValueError("quota must be an object")
        deadline = float(quota.get("deadline_ms", default_deadline_ms))
        queue_wait = float(quota.get("queue_wait_ms", default_queue_wait_ms))
        raw_states = quota.get("max_states", default_max_states)
        max_states = None if raw_states is None else int(raw_states)
        if deadline <= 0 or queue_wait < 0:
            raise ValueError("quota values must be positive")
        if max_states is not None and max_states < 1:
            raise ValueError("quota.max_states must be >= 1")
        return cls(
            deadline_ms=deadline,
            max_states=max_states,
            queue_wait_ms=queue_wait,
        )

    def budget(
        self, remaining_seconds: float, token: CancellationToken
    ) -> ExecutionBudget:
        """The budget for the engine work, given the wall clock left
        after queueing."""
        return ExecutionBudget(
            max_seconds=remaining_seconds,
            max_expanded=self.max_states,
            token=token,
            check_interval=_SERVE_CHECK_INTERVAL,
        )


class AdmissionController:
    """Bounded admission: ``max_concurrency`` running, ``max_queue``
    waiting, everything beyond shed.

    Single-threaded by design — all state is touched only from the event
    loop, so plain integers are race-free.  The executing work itself
    runs in worker threads; only the *gate* lives here.
    """

    def __init__(self, max_concurrency: int, max_queue: int) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self._slots = asyncio.Semaphore(max_concurrency)
        self.waiting = 0
        self.inflight = 0
        self.admitted = 0
        self.shed_queue_full = 0
        self.shed_queue_wait = 0

    @asynccontextmanager
    async def admit(self, queue_wait_seconds: float):
        """Hold one execution slot for the ``with`` body, or raise
        :class:`ShedError` (429 queue full / 503 wait timeout).

        The shed test is arrival-counted (``inflight + waiting`` against
        ``max_concurrency + max_queue``), not semaphore-state-probed: a
        burst admitted in one event-loop tick checks the gate before any
        of its members actually acquires, and probing the semaphore
        would let the whole burst register as waiters."""
        if self.inflight + self.waiting >= self.max_concurrency + self.max_queue:
            self.shed_queue_full += 1
            obs.count("serve.shed")
            raise ShedError(429, "queue full")
        self.waiting += 1
        obs.gauge_max("serve.queue_depth", self.waiting)
        wait_from = time.monotonic()
        try:
            await asyncio.wait_for(self._slots.acquire(), queue_wait_seconds)
        except asyncio.TimeoutError:
            self.shed_queue_wait += 1
            obs.count("serve.shed")
            obs.observe(
                "serve.queue_wait.seconds", time.monotonic() - wait_from
            )
            raise ShedError(503, "no slot within queue-wait quota") from None
        finally:
            self.waiting -= 1
        obs.observe("serve.queue_wait.seconds", time.monotonic() - wait_from)
        self.inflight += 1
        self.admitted += 1
        obs.gauge_max("serve.inflight", self.inflight)
        try:
            yield
        finally:
            self.inflight -= 1
            self._slots.release()

    def stats(self) -> dict[str, int]:
        return {
            "max_concurrency": self.max_concurrency,
            "max_queue": self.max_queue,
            "inflight": self.inflight,
            "waiting": self.waiting,
            "admitted": self.admitted,
            "shed_queue_full": self.shed_queue_full,
            "shed_queue_wait": self.shed_queue_wait,
        }
