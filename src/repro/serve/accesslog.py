"""Structured JSONL access log: one line per request, shed or served.

Every request that reaches the server — admitted queries, protocol
errors (400/404/405/413), sheds (429/503), deadline trips (504) —
produces exactly one JSON object on one line, carrying the trace id
that also appears on the request's spans, Provenance and flight-recorder
entry.  ``repro stats ACCESS.jsonl`` aggregates the file directly (the
lines are ``{"type": "access", ...}`` events in the trace vocabulary),
and the CI metrics-smoke job uploads it as an artifact.

Writing is fail-open: the access log must never take the service down,
so a full disk or yanked file degrades to the bounded in-memory ring
(always kept, served under ``/stats``) and counts
``serve.access.write_errors`` instead of raising.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs import telemetry


@dataclass(frozen=True)
class AccessRecord:
    """The facts of one finished request."""

    trace_id: str
    method: str
    path: str
    status: int
    duration_ms: float
    ts: float = 0.0
    session: str | None = None
    verdict: str | None = None
    queue_wait_ms: float | None = None
    budget: str | None = None
    shed: bool = False
    error: str | None = None

    def to_doc(self) -> dict:
        """The JSONL form; optional fields are omitted, not null —
        access logs get grepped, and absent beats ``null`` there."""
        doc = {
            "type": "access",
            "ts": round(self.ts, 6),
            "trace": self.trace_id,
            "method": self.method,
            "path": self.path,
            "status": self.status,
            "duration_ms": round(self.duration_ms, 3),
        }
        if self.session is not None:
            doc["session"] = self.session
        if self.verdict is not None:
            doc["verdict"] = self.verdict
        if self.queue_wait_ms is not None:
            doc["queue_wait_ms"] = round(self.queue_wait_ms, 3)
        if self.budget is not None:
            doc["budget"] = self.budget
        if self.shed:
            doc["shed"] = True
        if self.error is not None:
            doc["error"] = self.error
        return doc


class AccessLog:
    """JSONL sink plus a bounded in-memory tail.

    ``path=None`` keeps only the ring — tests and ad-hoc servers get
    the ``/stats`` tail without touching the filesystem.
    """

    def __init__(self, path: str | None = None, ring: int = 256) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=max(1, ring))
        self._handle = None
        self.lines = 0
        self.write_errors = 0
        if path:
            try:
                self._handle = open(path, "a", encoding="utf-8")
            except OSError:
                self.write_errors += 1
                telemetry.count("serve.access.write_errors")

    def write(self, record: AccessRecord) -> dict:
        """Emit one line; returns the logged doc (for tests/stats)."""
        doc = record.to_doc()
        if not doc.get("ts"):
            doc["ts"] = round(time.time(), 6)
        line = json.dumps(doc, sort_keys=True)
        with self._lock:
            self._ring.append(doc)
            self.lines += 1
            if self._handle is not None:
                try:
                    self._handle.write(line + "\n")
                    self._handle.flush()
                except (OSError, ValueError):
                    self.write_errors += 1
                    telemetry.count("serve.access.write_errors")
        telemetry.count("serve.access.lines")
        return doc

    def tail(self, n: int = 50) -> list[dict]:
        with self._lock:
            records = list(self._ring)
        return records[-max(0, n):]

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": self.path,
                "lines": self.lines,
                "ring": len(self._ring),
                "write_errors": self.write_errors,
            }

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
