"""The ``repro serve`` server: routes, deadlines, drain.

One asyncio event loop owns the sockets, the admission gate and the
breaker watchdog; engine work runs in a small thread-pool executor
(closure BFS holds the GIL, but requests overlap on store I/O and —
via the warm fan-out — on the process pool).  The pieces compose as::

    client ──> http.read_request ──> dispatch
                    │ POST /v1/query
                    ▼
         AdmissionController.admit  ── full ──> 429 / 503 (shed)
                    │ slot, deadline still live
                    ▼
         ExecutionBudget(remaining deadline, max_states, token)
                    │ run_in_executor
                    ▼
         program_transmits / engine  ── trip ──> UNKNOWN partial
                    │
                    ▼ verdict identical to the CLI path

**Deadline propagation.**  The request's deadline is fixed at arrival;
queue wait spends it.  The event loop waits for the executor future
only up to the remaining deadline (plus a small cancellation grace);
on timeout it cancels the budget token, and the governed loop trips at
its next check — the response is an honest 504 UNKNOWN and the worker
thread is released, never abandoned mid-computation holding locks.

**Status contract** (see ``docs/SERVICE.md``): 200 carries a verdict
(``flow`` / ``no_flow``, or ``unknown`` when a *client-chosen* state cap
tripped); 504 is a deadline/cancellation UNKNOWN; 429/503 are shed
before any work; 400/404/405 are protocol errors; 500 is an internal
failure (including injected ``err`` faults) — with the error named,
never a fabricated verdict.

**Drain.**  SIGTERM/SIGINT stop the listener, let in-flight requests
finish (up to ``drain_grace_seconds``, then cancel their tokens), flush
every session's completed memos to the store, and exit 0.  A drained
server that restarts answers warm from those rows.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import time
from dataclasses import dataclass
from functools import partial

from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.core import faults
from repro.core.budget import BudgetExceededError, CancellationToken
from repro.core.constraints import Constraint
from repro.core.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs.flight import FlightRecorder
from repro.serve.accesslog import AccessLog, AccessRecord
from repro.serve.admission import AdmissionController, RequestQuota, ShedError
from repro.serve.breaker import CircuitBreaker, probe_pool
from repro.serve.http import (
    HttpError,
    Request,
    json_response,
    read_request,
    text_response,
)
from repro.serve.sessions import Session, SessionRegistry
from repro.systems.program import parse_expr, program_transmits

#: Extra wall clock the loop grants past the deadline for the
#: cooperative trip to surface before it cancels the token itself.
_DEADLINE_GRACE = 0.25

#: How long to wait for a cancelled worker to acknowledge the trip
#: before answering 504 without it (the thread finishes in background).
_CANCEL_ACK = 2.0


@dataclass
class ServeConfig:
    """Everything ``repro serve`` accepts on the command line."""

    host: str = "127.0.0.1"
    port: int = 0
    store: str | None = None
    workers: int = 4
    max_concurrency: int = 4
    max_queue: int = 16
    session_capacity: int = 32
    default_deadline_ms: float = 5000.0
    default_queue_wait_ms: float = 1000.0
    default_max_states: int | None = None
    drain_grace_seconds: float = 5.0
    max_body: int = 1 << 20
    watchdog_interval_seconds: float = 0.2
    access_log: str | None = None
    flight_capacity: int = 64
    slow_request_ms: float | None = None


@dataclass
class _TextPayload:
    """A non-JSON response body (`/metrics` exposition text)."""

    text: str
    content_type: str


def _parse_vars(doc: dict) -> dict:
    """``{"x": "0..3", "b": "bool"}`` -> domain dict, via the CLI parser
    so the two front doors accept exactly the same domain language."""
    from repro.cli import parse_domain

    raw = doc.get("vars")
    if not isinstance(raw, dict) or not raw:
        raise HttpError(400, "vars must be a non-empty object")
    try:
        return dict(
            parse_domain(f"{name}={spec}") for name, spec in raw.items()
        )
    except Exception as exc:
        raise HttpError(400, f"bad vars: {exc}") from None


class ReproServer:
    """The service.  ``await run()`` from :func:`asyncio.run`."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.registry = SessionRegistry(
            store_path=config.store, capacity=config.session_capacity
        )
        self.admission = AdmissionController(
            config.max_concurrency, config.max_queue
        )
        self.breaker = CircuitBreaker()
        self.executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="repro-serve"
        )
        self.draining = False
        self.ready = False
        self.port: int | None = None
        self._seq = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._watchdog_task: asyncio.Task | None = None
        self._active_tokens: set[CancellationToken] = set()
        self.requests_by_status: dict[int, int] = {}
        self.drain_flushed = 0
        self.access_log = AccessLog(config.access_log)
        self.flight = FlightRecorder(config.flight_capacity)
        #: Per-request side facts (queue wait, shed reason) keyed by
        #: trace id: written while handling, popped when the access line
        #: is emitted.  Requests are funneled through one event loop and
        #: every trace id is unique, so plain dict ops suffice.
        self._notes: dict[str, dict] = {}

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        obs.enable()
        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.ready = True
        self._watchdog_task = asyncio.get_running_loop().create_task(
            self._watchdog()
        )

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: loop.create_task(self.drain())
                )
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass

    async def run(self, port_file: str | None = None) -> None:
        await self.start()
        self.install_signal_handlers()
        if port_file:
            with open(port_file, "w", encoding="utf-8") as handle:
                handle.write(f"{self.port}\n")
        print(
            f"repro serve listening on {self.config.host}:{self.port}",
            file=sys.stderr,
            flush=True,
        )
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish or trip in-flight,
        flush completed memos, then release :meth:`run`."""
        if self.draining:
            return
        self.draining = True
        self.ready = False
        with obs.span("serve.drain"):
            if self._server is not None:
                # close() stops accepting; wait_closed() is deliberately
                # not awaited — on 3.12+ it also waits for every client
                # handler, and an idle keep-alive connection would wedge
                # the drain forever.
                self._server.close()
            deadline = time.monotonic() + self.config.drain_grace_seconds
            while self.admission.inflight and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            if self.admission.inflight:
                for token in tuple(self._active_tokens):
                    token.cancel()
                while (
                    self.admission.inflight
                    and time.monotonic() < deadline + _CANCEL_ACK
                ):
                    await asyncio.sleep(0.02)
            if self._watchdog_task is not None:
                self._watchdog_task.cancel()
            loop = asyncio.get_running_loop()
            self.drain_flushed = await loop.run_in_executor(
                self.executor, self.registry.flush
            )
            obs.count("serve.drain.flushed", self.drain_flushed)
            # Let responses for just-finished requests reach the wire
            # before run() returns and the process exits.
            await asyncio.sleep(0.05)
            self.executor.shutdown(wait=False, cancel_futures=True)
            self.access_log.close()
        print(
            f"repro serve drained ({self.drain_flushed} memo rows flushed)",
            file=sys.stderr,
            flush=True,
        )
        self._stopped.set()

    async def _watchdog(self) -> None:
        """Probe a dead pool back to life on capped-exponential cooldown."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.watchdog_interval_seconds)
            if not self.breaker.should_probe():
                continue
            self.breaker.begin_probe()
            with obs.span("serve.probe"):
                ok = await loop.run_in_executor(self.executor, probe_pool)
            if ok:
                self.breaker.probe_succeeded()
            else:
                self.breaker.probe_failed()

    # -- connection loop ------------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = False
                request: Request | None = None
                trace_id: str | None = None
                started = time.monotonic()
                try:
                    request = await read_request(reader, self.config.max_body)
                    if request is None:
                        break
                    trace_id = request.trace_id
                    keep_alive = request.keep_alive
                    token = obs.set_trace(trace_id)
                    try:
                        status, doc = await self._dispatch(request)
                    finally:
                        obs.reset_trace(token)
                except HttpError as exc:
                    status, doc = exc.status, {"error": exc.message}
                    keep_alive = False
                except Exception as exc:
                    status, doc = 500, {"error": f"{type(exc).__name__}: {exc}"}
                if trace_id is None:
                    # The request never parsed (bad request line, huge
                    # body): mint an id anyway so the rejection is still
                    # a correlatable access-log line.
                    trace_id = obs.new_trace_id()
                duration_ms = (time.monotonic() - started) * 1000.0
                self.requests_by_status[status] = (
                    self.requests_by_status.get(status, 0) + 1
                )
                obs.count("serve.requests")
                obs.observe("serve.request.seconds", duration_ms / 1000.0)
                self._finish_request(
                    request, trace_id, status, duration_ms, doc
                )
                headers = {"X-Trace-Id": trace_id}
                if isinstance(doc, _TextPayload):
                    writer.write(
                        text_response(
                            status, doc.text, doc.content_type,
                            keep_alive, headers,
                        )
                    )
                else:
                    writer.write(
                        json_response(status, doc, keep_alive, headers)
                    )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _finish_request(
        self,
        request: Request | None,
        trace_id: str,
        status: int,
        duration_ms: float,
        doc,
    ) -> None:
        """Emit the access-log line and, for failures, a flight record."""
        note = self._notes.pop(trace_id, {})
        body = doc if isinstance(doc, dict) else {}
        budget = note.get("budget")
        if budget is None and isinstance(body.get("partial"), dict):
            budget = "exhausted"
        record = AccessRecord(
            trace_id=trace_id,
            method=request.method if request else "",
            path=request.path if request else "",
            status=status,
            duration_ms=duration_ms,
            session=body.get("session") or note.get("session"),
            verdict=body.get("verdict"),
            queue_wait_ms=note.get("queue_wait_ms"),
            budget=budget,
            shed=bool(body.get("shed")),
            error=body.get("error") if isinstance(body.get("error"), str)
            else None,
        )
        self.access_log.write(record)
        reason = note.get("reason")
        if reason is None:
            if status == 504:
                reason = "deadline"
            elif status in (429, 503):
                reason = "shed"
            elif status >= 500:
                reason = "error"
            elif (
                self.config.slow_request_ms is not None
                and duration_ms >= self.config.slow_request_ms
            ):
                reason = "slow"
        if reason is not None:
            self.flight.record(
                trace_id,
                reason,
                status,
                method=record.method,
                path=record.path,
                session=record.session,
                duration_ms=duration_ms,
                detail=record.error or "",
            )

    def _note(self, trace_id: str | None, **facts) -> None:
        if trace_id:
            self._notes.setdefault(trace_id, {}).update(facts)

    def _in_trace(self, trace_id: str | None, fn, *args):
        """Executor-thread entry: ``run_in_executor`` does not propagate
        contextvars, so the request's trace id is re-installed
        explicitly around the thread body (spans, Provenance and
        absorbed pool batches all read it from there)."""
        token = obs.set_trace(trace_id)
        try:
            return fn(*args)
        finally:
            obs.reset_trace(token)

    async def _dispatch(self, request: Request) -> tuple[int, dict]:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, self._healthz()
        if route == ("GET", "/readyz"):
            if self.ready and not self.draining:
                return 200, {"ready": True}
            return 503, {"ready": False, "draining": self.draining}
        if route == ("GET", "/stats"):
            if request.query.get("flight"):
                return 200, {
                    "flight": self.flight.dump(),
                    **self.flight.stats(),
                }
            return 200, self._stats()
        if route == ("GET", "/metrics"):
            return 200, _TextPayload(
                obs_metrics.render(extra_gauges=self._live_gauges()),
                obs_metrics.CONTENT_TYPE,
            )
        if route == ("POST", "/v1/sessions"):
            return await self._handle_sessions(request)
        if route == ("POST", "/v1/query"):
            return await self._handle_query(request)
        if request.path in (
            "/healthz", "/readyz", "/stats", "/metrics",
            "/v1/sessions", "/v1/query",
        ):
            return 405, {"error": f"{request.method} not allowed"}
        return 404, {"error": f"no route {request.path}"}

    # -- health / stats -------------------------------------------------------

    def _healthz(self) -> dict:
        breaker = self.breaker.stats()
        store_degraded = self.registry.any_store_degraded()
        if self.draining:
            status = "draining"
        elif breaker["state"] != "closed" or store_degraded:
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "breaker": breaker,
            "pool_executor": self.breaker.executor_hint(),
            "store_degraded": store_degraded,
            "sessions": len(self.registry.sessions()),
            "inflight": self.admission.inflight,
            "queue_depth": self.admission.waiting,
        }

    def _live_gauges(self) -> dict[str, float]:
        """Point-in-time values for ``/metrics`` that the collector's
        high-water gauges do not capture."""
        return {
            "serve.inflight.current": float(self.admission.inflight),
            "serve.queue_depth.current": float(self.admission.waiting),
            "serve.sessions.resident": float(len(self.registry.sessions())),
            "serve.breaker.open": 0.0 if self.breaker.stats()["state"] == "closed" else 1.0,
            "serve.flight.retained": float(self.flight.stats()["retained"]),
        }

    def _stats(self) -> dict:
        snap = obs.snapshot()
        hists = {}
        for name in sorted(snap.hists):
            hist = snap.hists[name]
            hists[name] = {
                "count": hist.count,
                "sum_seconds": round(hist.sum_seconds, 6),
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        return {
            "health": self._healthz(),
            "requests_by_status": {
                str(k): v for k, v in sorted(self.requests_by_status.items())
            },
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
            "sessions": self.registry.stats(),
            "access": self.access_log.stats(),
            "flight": self.flight.stats(),
            "telemetry": {
                "counters": dict(sorted(snap.counters.items())),
                "gauges": dict(sorted(snap.gauges.items())),
                "hists": hists,
                "spans": len(snap.spans),
            },
        }

    # -- sessions -------------------------------------------------------------

    async def _handle_sessions(self, request: Request) -> tuple[int, dict]:
        if self.draining:
            return 503, {"error": "draining"}
        doc = request.json()
        program = doc.get("program")
        if not isinstance(program, str) or not program.strip():
            raise HttpError(400, "program must be a non-empty string")
        domains = _parse_vars(doc)
        prewarm = bool(doc.get("prewarm", False))
        loop = asyncio.get_running_loop()
        trace_id = obs.current_trace()
        try:
            session, created = await loop.run_in_executor(
                self.executor,
                partial(
                    self._in_trace,
                    trace_id,
                    partial(self.registry.create, program, domains),
                ),
            )
        except ReproError as exc:
            raise HttpError(400, f"bad program: {exc}") from None
        self._note(trace_id, session=session.key)
        if prewarm:
            await loop.run_in_executor(
                self.executor,
                partial(
                    self._in_trace,
                    trace_id,
                    partial(self._warm_session, session),
                ),
            )
        store = session.engine.store
        return 200, {
            "session": session.key,
            "created": created,
            "states": session.ps.system.space.size,
            "store_attached": store is not None,
            "store_degraded": session.store_degraded,
            "prewarmed": prewarm,
        }

    def _warm_session(self, session: Session) -> None:
        """Fan the session's singleton closures out across the pool
        (executor steered by the breaker), then feed the resulting
        execution reports back as breaker evidence."""
        engine = session.engine
        log = engine.execution_log
        before = len(log.reports)
        with obs.span("serve.warm"):
            try:
                engine.closure(
                    max_workers=self.config.workers,
                    executor=self.breaker.executor_hint(),
                )
            finally:
                self.breaker.observe_reports(log.reports[before:])

    # -- queries --------------------------------------------------------------

    async def _handle_query(self, request: Request) -> tuple[int, dict]:
        if self.draining:
            return 503, {"error": "draining"}
        arrival = time.monotonic()
        self._seq += 1
        ordinal = self._seq
        doc = request.json()
        try:
            quota = RequestQuota.from_doc(
                doc,
                self.config.default_deadline_ms,
                self.config.default_queue_wait_ms,
                self.config.default_max_states,
            )
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad quota: {exc}") from None
        source = doc.get("source")
        target = doc.get("target")
        if not isinstance(source, str) or not isinstance(target, str):
            raise HttpError(400, "source and target are required strings")
        session = await self._resolve_session(doc)
        deadline_at = arrival + quota.deadline_ms / 1000.0
        try:
            faults.inject("serve.admit", ordinal)
        except faults.InjectedFaultError as exc:
            return 503, {"error": str(exc)}
        trace_id = obs.current_trace()
        try:
            queue_wait = min(
                quota.queue_wait_ms / 1000.0,
                max(0.0, deadline_at - time.monotonic()),
            )
            wait_from = time.monotonic()
            async with self.admission.admit(queue_wait):
                self._note(
                    trace_id,
                    queue_wait_ms=(time.monotonic() - wait_from) * 1000.0,
                    budget="governed",
                )
                remaining = deadline_at - time.monotonic()
                if remaining <= 0:
                    obs.count("serve.deadline_timeouts")
                    self._note(trace_id, budget="exhausted")
                    return 504, _unknown_doc(
                        "deadline", "deadline spent queueing"
                    )
                return await self._execute_query(
                    ordinal, session, doc, quota, remaining
                )
        except ShedError as exc:
            self._note(
                trace_id,
                reason="shed",
                queue_wait_ms=(time.monotonic() - wait_from) * 1000.0,
            )
            return exc.status, {
                "error": exc.reason,
                "shed": True,
                "retry_after_ms": int(self.config.default_queue_wait_ms),
            }

    async def _resolve_session(self, doc: dict) -> Session:
        key = doc.get("session")
        if key is not None:
            session = self.registry.get(str(key))
            if session is None:
                raise HttpError(404, f"no session {key!r}")
            return session
        program = doc.get("program")
        if not isinstance(program, str) or not program.strip():
            raise HttpError(
                400, "give either session (hash) or program + vars"
            )
        domains = _parse_vars(doc)
        loop = asyncio.get_running_loop()
        try:
            session, _ = await loop.run_in_executor(
                self.executor,
                partial(
                    self._in_trace,
                    obs.current_trace(),
                    partial(self.registry.create, program, domains),
                ),
            )
        except ReproError as exc:
            raise HttpError(400, f"bad program: {exc}") from None
        return session

    async def _execute_query(
        self,
        ordinal: int,
        session: Session,
        doc: dict,
        quota: RequestQuota,
        remaining: float,
    ) -> tuple[int, dict]:
        token = CancellationToken()
        budget = quota.budget(remaining, token)
        self._active_tokens.add(token)
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self.executor,
            partial(
                self._in_trace,
                obs.current_trace(),
                partial(self._run_query, ordinal, session, doc, budget),
            ),
        )
        try:
            # shield(): a wait_for timeout must not cancel the executor
            # future — the thread is still running and its (possibly
            # just-late) result is awaited again below.
            return await asyncio.wait_for(
                asyncio.shield(future), remaining + _DEADLINE_GRACE
            )
        except asyncio.TimeoutError:
            token.cancel()
            obs.count("serve.deadline_timeouts")
            try:
                status, body = await asyncio.wait_for(
                    asyncio.shield(future), _CANCEL_ACK
                )
            except asyncio.TimeoutError:
                return 504, _unknown_doc(
                    "deadline", "worker did not acknowledge cancellation"
                )
            if status == 200:
                # Finished just past the wire deadline: the verdict is
                # still correct, but the client has already timed out —
                # report it as late rather than pretend it was in time.
                body = dict(body)
                body["late"] = True
                return 200, body
            return status, body
        finally:
            self._active_tokens.discard(token)

    def _run_query(
        self, ordinal: int, session: Session, doc: dict, budget
    ) -> tuple[int, dict]:
        """Executor-thread body: the same path the CLI walks."""
        faults.inject("serve.request", ordinal)
        session.count_query()
        entry = None
        entry_text = doc.get("entry")
        if entry_text is not None:
            expr = parse_expr(str(entry_text))
            entry = Constraint(
                session.ps.space,
                lambda s: bool(expr.eval(s)),
                name=str(entry_text),
            )
        with obs.span("serve.query"):
            try:
                result = program_transmits(
                    session.ps,
                    {str(doc["source"])},
                    str(doc["target"]),
                    entry,
                    budget,
                )
            except BudgetExceededError as exc:
                partial_doc = _unknown_doc(
                    exc.partial.reason,
                    exc.partial.describe(),
                    partial=exc.partial,
                )
                self._note(obs.current_trace(), budget="exhausted")
                if exc.partial.reason in ("deadline", "cancelled"):
                    obs.count("serve.deadline_timeouts")
                    return 504, partial_doc
                # A client-chosen cap (max_states) tripped: the request
                # succeeded at what it asked for — an honest UNKNOWN.
                return 200, partial_doc
        body: dict = {
            "verdict": "flow" if result else "no_flow",
            "source": doc["source"],
            "target": doc["target"],
            "session": session.key,
        }
        if result and result.witness is not None:
            body["witness"] = result.witness.describe()
        if result.provenance is not None:
            body["provenance"] = result.provenance.describe()
        return 200, body


def _unknown_doc(reason: str, detail: str, partial=None) -> dict:
    doc = {"verdict": "unknown", "reason": reason, "detail": detail}
    if partial is not None:
        doc["partial"] = {
            "label": partial.label,
            "expanded": partial.expanded,
            "discovered": partial.discovered,
            "frontier": partial.frontier,
            "elapsed": partial.elapsed,
        }
    return doc


__all__ = ["ReproServer", "ServeConfig"]
