"""Warm engine sessions keyed by the canonical system hash.

A *session* is the server-side unit of warmth: one built
:class:`ProgramSystem` plus its shared :class:`DependencyEngine`, alive
across requests so every closure, history table and bucket memo is paid
once.  Sessions are keyed by the PR-7 canonical :func:`system_hash` of
the compiled kernel — the same content key the persistent store uses —
so two clients posting byte-different but semantically identical
programs (same shape, same transition tables) land on one session, and
a *restarted* server hydrates from the store: the new session's first
query finds its closures as store-tier row fetches instead of BFS.

The registry is an LRU bounded by ``capacity``.  Eviction persists the
victim's completed memos first (when a store is attached), so capping
RAM never discards finished work — the same never-lose-completed-work
contract the SIGTERM drain honors.

Thread-safety: sessions are created inside executor threads while the
event loop reads stats; all registry state is lock-protected.  The
registry keeps strong references to the systems it serves — the engine
table in :mod:`repro.core.engine` is weakly keyed, so the registry is
what keeps a session's engine alive.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.core.engine import DependencyEngine, shared_engine
from repro.core.store import system_hash
from repro.systems.program import ProgramSystem, build_program_system


@dataclass
class Session:
    """One warm program system + engine, shared across requests."""

    key: str
    ps: ProgramSystem
    engine: DependencyEngine
    created_at: float
    queries: int = 0
    last_trace: str | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def count_query(self) -> None:
        trace = obs.current_trace()
        with self._lock:
            self.queries += 1
            if trace is not None:
                self.last_trace = trace

    @property
    def store_degraded(self) -> bool:
        store = self.engine.store
        return bool(store is not None and store.degraded)

    def persist(self) -> int:
        """Flush completed memos to the store; 0 when none attached."""
        return self.engine.persist_memos()

    def brief(self) -> dict[str, object]:
        store = self.engine.store
        return {
            "states": self.ps.system.space.size,
            "queries": self.queries,
            "last_trace": self.last_trace,
            "uptime_seconds": round(time.monotonic() - self.created_at, 3),
            "store": store.stats_brief() if store is not None else None,
        }


class SessionRegistry:
    """LRU map ``system_hash -> Session`` with persist-on-evict."""

    def __init__(self, store_path: str | None = None, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("session capacity must be >= 1")
        self.store_path = store_path
        self.capacity = capacity
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self.created = 0
        self.evicted = 0
        self.rebound = 0

    def create(self, program_text: str, domains: dict) -> tuple[Session, bool]:
        """Build (or rebind to) the session for this program.

        Returns ``(session, created)``; ``created`` is False when an
        equivalent system was already warm.  Building and compiling run
        in the calling (executor) thread — only the registry update is
        under the lock.
        """
        with obs.span("serve.session.create"):
            ps = build_program_system(program_text, domains)
            engine = shared_engine(ps.system)
            if self.store_path:
                engine.attach_store(self.store_path)
            kernel = engine.compiled_system().kernel
            key = system_hash(kernel)
        evict: Session | None = None
        with self._lock:
            existing = self._sessions.get(key)
            if existing is not None:
                self._sessions.move_to_end(key)
                self.rebound += 1
                return existing, False
            session = Session(
                key=key, ps=ps, engine=engine, created_at=time.monotonic()
            )
            self._sessions[key] = session
            self.created += 1
            if len(self._sessions) > self.capacity:
                _, evict = self._sessions.popitem(last=False)
                self.evicted += 1
        obs.count("serve.sessions.created")
        if evict is not None:
            obs.count("serve.sessions.evicted")
            evict.persist()
        return session, True

    def get(self, key: str) -> Session | None:
        with self._lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
            return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def flush(self) -> int:
        """Persist every session's completed memos; returns rows written."""
        return sum(session.persist() for session in self.sessions())

    def any_store_degraded(self) -> bool:
        return any(s.store_degraded for s in self.sessions())

    def stats(self) -> dict[str, object]:
        with self._lock:
            per_session = {
                key: session.brief() for key, session in self._sessions.items()
            }
        return {
            "capacity": self.capacity,
            "count": len(per_session),
            "created": self.created,
            "evicted": self.evicted,
            "rebound": self.rebound,
            "sessions": per_session,
        }
