"""Long-lived dependency-analysis service (``repro serve``).

PRs 4-7 built every ingredient a server needs — governed budgets with
cooperative cancellation, a process→thread→serial degradation ladder,
fault injection, and a content-addressed persistent store — but each
analysis still paid a cold process.  This package is the thin, *hostile
conditions first* composition of those pieces into a stdlib-only asyncio
HTTP/JSON service:

- :mod:`repro.serve.http` — a minimal HTTP/1.1 reader/writer on asyncio
  streams (no frameworks; the container has only the stdlib),
- :mod:`repro.serve.admission` — bounded-queue admission control
  mapping per-request quotas onto :class:`ExecutionBudget`,
- :mod:`repro.serve.breaker` — a circuit breaker over the warm pool
  with a watchdog that probes and recovers,
- :mod:`repro.serve.sessions` — warm :class:`DependencyEngine` sessions
  keyed by the canonical system hash, hydrated from the store,
- :mod:`repro.serve.app` — the server: routes, deadline propagation,
  graceful drain.

The correctness contract mirrors the engine's: a response is either a
verdict the CLI path would also produce, or an explicit UNKNOWN —
overload, worker death, store corruption and deadline storms degrade
answers to honest UNKNOWNs/shed requests, never to wrong verdicts and
never to a wedged server.  See ``docs/SERVICE.md``.
"""

from repro.serve.admission import AdmissionController, RequestQuota, ShedError
from repro.serve.app import ReproServer, ServeConfig
from repro.serve.breaker import CircuitBreaker
from repro.serve.sessions import Session, SessionRegistry

__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "ReproServer",
    "RequestQuota",
    "ServeConfig",
    "Session",
    "SessionRegistry",
    "ShedError",
]
