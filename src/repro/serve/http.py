"""Minimal HTTP/1.1 on asyncio streams.

The container is stdlib-only, so the service speaks just enough HTTP
itself: request line + headers + ``Content-Length`` bodies in,
``application/json`` out, keep-alive by default.  No chunked transfer,
no multipart, no TLS — clients are ``scripts/serve_client.py``, CI
smoke jobs and load generators, all of which speak this subset.

Malformed input raises :class:`HttpError`, which the connection loop
turns into a JSON error response with the carried status; oversized
bodies are rejected before they are read (the request-size bound is
part of the overload posture, not an afterthought).
"""

from __future__ import annotations

import asyncio
import json
import re
from dataclasses import dataclass, field
from urllib.parse import parse_qsl

from repro.obs.telemetry import new_trace_id

#: Reason phrases for every status the service emits.
STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Per-line bound: a request line or header longer than this is abuse.
_MAX_LINE = 8192
_MAX_HEADERS = 64

#: What a client-supplied ``X-Trace-Id`` may look like.  Anything else
#: (too long, control characters, header-injection attempts) is ignored
#: and a fresh id is minted — the id is echoed into logs and response
#: headers, so it must stay inert.
_TRACE_ID_OK = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")


class HttpError(Exception):
    """A protocol-level rejection with the HTTP status to answer."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


@dataclass
class Request:
    """One parsed request.

    ``trace_id`` is the per-request correlation id: a well-formed
    client-supplied ``X-Trace-Id`` header is honored (so a caller can
    stitch our spans into its own trace), otherwise a fresh id is
    minted at parse time — every request has one before any routing
    or admission decision happens.
    """

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    query: dict[str, str] = field(default_factory=dict)
    trace_id: str = ""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> dict:
        """The body as a JSON object, or :class:`HttpError` 400."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            doc = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"bad JSON body: {exc}") from None
        if not isinstance(doc, dict):
            raise HttpError(400, "JSON body must be an object")
        return doc


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise HttpError(400, "truncated request") from None
        return b""  # clean EOF between requests
    except asyncio.LimitOverrunError:
        raise HttpError(400, "header line too long") from None
    if len(line) > _MAX_LINE:
        raise HttpError(400, "header line too long")
    return line


async def read_request(
    reader: asyncio.StreamReader, max_body: int = 1 << 20
) -> Request | None:
    """Read one request; ``None`` on clean connection close."""
    line = await _read_line(reader)
    if not line:
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "bad request line")
    method, target, _version = parts
    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"", b"\r\n", b"\n"):
            break
        if len(headers) >= _MAX_HEADERS:
            raise HttpError(400, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, "bad header line")
        headers[name.strip().lower()] = value.strip()
    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked transfer not supported")
    # Routes are exact-path; the query string is parsed separately
    # (e.g. /stats?flight=1).
    path, _, query_text = target.partition("?")
    query = dict(parse_qsl(query_text, keep_blank_values=True))
    supplied = headers.get("x-trace-id", "")
    trace_id = supplied if _TRACE_ID_OK.match(supplied) else new_trace_id()
    return Request(
        method=method.upper(),
        path=path,
        headers=headers,
        body=body,
        query=query,
        trace_id=trace_id,
    )


def _head(
    status: int,
    content_type: str,
    length: int,
    keep_alive: bool,
    headers: dict[str, str] | None,
) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {length}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def json_response(
    status: int,
    doc: dict,
    keep_alive: bool = True,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one JSON response, ready for ``writer.write``."""
    payload = (json.dumps(doc, sort_keys=True) + "\n").encode()
    return (
        _head(status, "application/json", len(payload), keep_alive, headers)
        + payload
    )


def text_response(
    status: int,
    text: str,
    content_type: str = "text/plain; charset=utf-8",
    keep_alive: bool = True,
    headers: dict[str, str] | None = None,
) -> bytes:
    """Serialize one plain-text response (the ``/metrics`` exposition)."""
    payload = text.encode("utf-8")
    return (
        _head(status, content_type, len(payload), keep_alive, headers)
        + payload
    )
