"""Circuit breaker over the warm process pool, with a recovery watchdog.

The engine's fan-out already survives worker death by itself — the PR-4
process→thread→serial ladder retries and degrades *within one call*.
What a long-lived server adds is memory across calls: once a pool has
died, spinning a fresh pool per warm request just re-pays pool startup
and another crash-retry cycle under load.  The breaker remembers:

- **closed** (healthy): warm fan-outs use the process pool;
- **open** (tripped): fan-outs are steered straight to the thread
  executor (the ladder's own destination, minus the per-call crash
  detour), while a watchdog probes whether processes work again after a
  capped-exponential cooldown (0.1s · 2^n, capped at 5s);
- **half-open**: a probe is in flight; the first result decides.

Failure evidence is the engine's own :class:`ExecutionReport` stream —
a warm run that recorded pool retries or a ``process->thread``
degradation is a failure observation; a clean process-executor run is a
success.  The breaker therefore never interprets exceptions itself (the
ladder already converted them into reports) and can never produce a
wrong verdict: it only chooses *which executor* the next warm uses.

Thread-safety: observations arrive from executor threads, probes from
the event loop's watchdog — all state transitions take ``_lock``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ProcessPoolExecutor

from repro import obs
from repro.core.budget import ExecutionReport
from repro.core.signals import reset_inherited_signals

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_BACKOFF_BASE = 0.1
_BACKOFF_CAP = 5.0


def _probe_task() -> int:
    """Trivial picklable round-trip a probe sends through a fresh pool."""
    return 42


def probe_pool(timeout: float = 30.0) -> bool:
    """Can this host run a process-pool round-trip right now?"""
    try:
        pool = ProcessPoolExecutor(
            max_workers=1, initializer=reset_inherited_signals
        )
    except OSError:
        return False
    try:
        return pool.submit(_probe_task).result(timeout=timeout) == 42
    except Exception:
        return False
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


class CircuitBreaker:
    """Closed/open/half-open breaker steering warm fan-outs."""

    def __init__(
        self,
        backoff_base: float = _BACKOFF_BASE,
        backoff_cap: float = _BACKOFF_CAP,
        clock=time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.probes = 0
        self.recoveries = 0
        self.last_trip_trace: str | None = None
        self._probe_at = 0.0

    # -- observations ---------------------------------------------------------

    def observe_reports(self, reports: tuple[ExecutionReport, ...]) -> None:
        """Digest the execution reports one warm call produced."""
        failed = any(
            r.retries > 0
            or any(step.startswith("process->") for step in r.degradations)
            for r in reports
        )
        clean_process = any(
            r.executor == "process" and not r.retries and not r.degradations
            for r in reports
        )
        if failed:
            self.record_failure()
        elif clean_process:
            self.record_success()

    def record_failure(self) -> None:
        trace = obs.current_trace()
        with self._lock:
            self.consecutive_failures += 1
            if trace is not None:
                # The request whose warm fan-out produced the failing
                # evidence — the post-mortem entry point.
                self.last_trip_trace = trace
            if self.state != OPEN:
                self.trips += 1
                obs.count("serve.breaker.trips")
            self.state = OPEN
            backoff = min(
                self.backoff_cap,
                self.backoff_base * (2 ** (self.consecutive_failures - 1)),
            )
            self._probe_at = self._clock() + backoff

    def record_success(self) -> None:
        with self._lock:
            if self.state == CLOSED and self.consecutive_failures == 0:
                return
            self.state = CLOSED
            self.consecutive_failures = 0

    # -- executor steering ----------------------------------------------------

    def executor_hint(self) -> str:
        """Which executor the next warm fan-out should use."""
        return "process" if self.state == CLOSED else "thread"

    # -- watchdog protocol ----------------------------------------------------

    def should_probe(self) -> bool:
        with self._lock:
            return self.state == OPEN and self._clock() >= self._probe_at

    def begin_probe(self) -> None:
        with self._lock:
            self.state = HALF_OPEN
            self.probes += 1
        obs.count("serve.breaker.probes")

    def probe_succeeded(self) -> None:
        with self._lock:
            self.state = CLOSED
            self.consecutive_failures = 0
            self.recoveries += 1
        obs.count("serve.breaker.recoveries")

    def probe_failed(self) -> None:
        with self._lock:
            self.state = OPEN
            self.consecutive_failures += 1
            backoff = min(
                self.backoff_cap,
                self.backoff_base * (2 ** (self.consecutive_failures - 1)),
            )
            self._probe_at = self._clock() + backoff

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "trips": self.trips,
                "probes": self.probes,
                "recoveries": self.recoveries,
                "last_trip_trace": self.last_trip_trace,
            }
