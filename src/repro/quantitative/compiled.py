"""Compiled quantitative substrate: section 7.4 measures on state ids.

The object path (:mod:`repro.quantitative.channel`,
:mod:`repro.quantitative.bandwidth`) replays ``history(state)`` once per
(input, state) pair over ``State`` dicts.  This module reruns the same
exact arithmetic on the compiled integer kernel (PR 2/3):

- :class:`CompiledDistribution` — exact probabilities as parallel
  ``sat_ids``/weight arrays; uniform-over-phi comes straight from
  :meth:`CompiledSystem.sat_ids`.
- push-forward is one index-gather through the composed successor array
  (``comp[i] = id(H(state_i))``), served RAM -> store -> compose by
  :meth:`DependencyEngine.composed_history_array`.
- marginals and joints read off the kernel's per-object value columns
  (``domain[column[i]]``) — no ``State`` is materialized.
- the averaged measure is one bucket-grouped pass over the Def 1-1
  partition (conditioning on "everything outside A held at z" *is*
  membership in one bucket), replacing the O(|support|^2) per-z-slice
  ``condition(lambda ...)`` loop.
- the channel layer is batched: every channel input is an additive
  stride offset on the source-zeroed "rest part" of a support id, so one
  composed sweep serves the whole matrix, and ``capacity_table`` shares
  one composed table across every (source, target) pair.

Every measure is *exact* (``Fraction`` tables, floats only inside
``log2`` — the same boundary the object path draws), falls back to the
object path on :class:`~repro.core.errors.ForeignOperationError` (ad-hoc
composite operations the kernel has no successor column for), honours
:class:`~repro.core.budget.ExecutionBudget` metering (a trip raises with
a ``PartialResult`` — bits are UNKNOWN, never a wrong number), and emits
``quant.*`` telemetry.
"""

from __future__ import annotations

import itertools
import math
from array import array
from collections.abc import Iterable, Iterator, Sequence
from fractions import Fraction

from repro import obs
from repro.core.budget import BudgetMeter, ExecutionBudget
from repro.core.compiled import CompiledSystem
from repro.core.constraints import Constraint
from repro.core.engine import DependencyEngine, shared_engine
from repro.core.errors import DistributionError, ForeignOperationError
from repro.core.state import Value
from repro.core.system import History, Operation, System
from repro.quantitative import bandwidth as _bandwidth
from repro.quantitative import channel as _channel
from repro.quantitative.bandwidth import blahut_arimoto
from repro.quantitative.distributions import StateDistribution
from repro.quantitative.entropy import entropy, mutual_information


def _counts_mutual_information(
    counts: dict[tuple[object, object], int], total: int
) -> float:
    """``I(X; Y)`` from integer joint counts summing to ``total``.

    For a uniform slice every mass is ``c / total``, so each entropy is
    ``log2(total) - sum(c * log2(c)) / total`` on plain integers — no
    ``Fraction`` arithmetic at all.  Used only where the caller compares
    with tolerance (the averaged measure's per-slice terms); the
    single-joint measures keep the exact-table path so their floats stay
    bit-identical to the object path's.
    """
    xs: dict[object, int] = {}
    ys: dict[object, int] = {}
    for (x, y), c in counts.items():
        xs[x] = xs.get(x, 0) + c
        ys[y] = ys.get(y, 0) + c
    log2 = math.log2

    def h(tab: dict) -> float:
        return log2(total) - sum(c * log2(c) for c in tab.values()) / total

    value = h(xs) + h(ys) - h(counts)
    return value if value > 0.0 else 0.0


class CompiledDistribution:
    """An exact distribution over dense state ids.

    ``ids`` (ascending) and ``weights`` are parallel: ``weights[k]`` is
    the probability of ``state_{ids[k]}`` as a ``Fraction``.  The
    constraint a uniform distribution was built over is retained so the
    bucket sweeps can reuse the engine's store-backed Def 1-1 partition
    for the same ``sat(phi)``.
    """

    __slots__ = ("compiled", "ids", "weights", "constraint", "uniform")

    def __init__(
        self,
        compiled: CompiledSystem,
        ids: Sequence[int],
        weights: Sequence[Fraction],
        constraint: Constraint | None = None,
        uniform: bool = False,
    ) -> None:
        if len(ids) != len(weights):
            raise DistributionError("ids and weights must be parallel")
        self.compiled = compiled
        self.ids = ids
        self.weights = weights
        self.constraint = constraint
        self.uniform = uniform

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def space_names(self) -> tuple[str, ...]:
        return self.compiled.kernel.names

    @classmethod
    def uniform_over(
        cls, compiled: CompiledSystem, constraint: Constraint | None = None
    ) -> "CompiledDistribution":
        """Equal probability over sat(phi), straight from the kernel's
        satisfying-id memo (``None`` = the whole space)."""
        sat = compiled.sat_ids(constraint)
        ids: Sequence[int] = range(compiled.kernel.n) if sat is None else sat
        if len(ids) == 0:
            raise DistributionError(
                "uniform distribution over an unsatisfiable constraint"
            )
        p = Fraction(1, len(ids))
        return cls(
            compiled, ids, [p] * len(ids), constraint=constraint, uniform=True
        )

    @classmethod
    def from_state_distribution(
        cls, compiled: CompiledSystem, dist: StateDistribution
    ) -> "CompiledDistribution":
        """Encode an object-path distribution (support states -> ids)."""
        index = {state: i for i, state in enumerate(compiled.states)}
        pairs = sorted((index[s], p) for s, p in dist.items())
        ids = array("L", (i for i, _ in pairs))
        return cls(compiled, ids, [p for _, p in pairs])

    def to_state_distribution(self) -> StateDistribution:
        """Decode back to the object path (the fallback boundary)."""
        states = self.compiled.states
        return StateDistribution(
            self.compiled.system.space,
            {states[i]: w for i, w in zip(self.ids, self.weights)},
        )

    def push_forward(self, comp: Sequence[int]) -> "CompiledDistribution":
        """``[H]pr`` through a composed successor array — one gather."""
        out: dict[int, Fraction] = {}
        for i, w in zip(self.ids, self.weights):
            j = comp[i]
            prev = out.get(j)
            out[j] = w if prev is None else prev + w
        ids = array("L", sorted(out))
        return CompiledDistribution(
            self.compiled, ids, [out[i] for i in ids]
        )


class QuantEngine:
    """Section 7.4 / 1.8 measures over one system's compiled kernel.

    Binds to a :class:`~repro.core.engine.DependencyEngine` (the
    process-shared one by default) so composed successor arrays, Def 1-1
    buckets, and the persistent store are all shared with the
    qualitative provers.  Histories containing operations that are not
    the system's own fall back to the object path (counted as
    ``quant.fallback_object``), so every method accepts exactly what the
    object functions accept.
    """

    def __init__(
        self,
        system: System | None = None,
        engine: DependencyEngine | None = None,
        budget: ExecutionBudget | None = None,
    ) -> None:
        if engine is None:
            if system is None:
                raise ValueError("QuantEngine needs a system or an engine")
            engine = shared_engine(system)
        self.engine = engine
        self.system = engine.system
        self.budget = budget

    # -- distribution plumbing ------------------------------------------------

    def uniform(
        self, constraint: Constraint | None = None
    ) -> CompiledDistribution:
        return CompiledDistribution.uniform_over(
            self.engine.compiled_system(), constraint
        )

    def _as_compiled(self, dist) -> CompiledDistribution:
        if isinstance(dist, CompiledDistribution):
            return dist
        return CompiledDistribution.from_state_distribution(
            self.engine.compiled_system(), dist
        )

    @staticmethod
    def _as_object(dist) -> StateDistribution:
        if isinstance(dist, CompiledDistribution):
            return dist.to_state_distribution()
        return dist

    def push_forward(
        self, dist, history: History | Operation
    ) -> CompiledDistribution:
        """``[H]pr`` as one index-gather (falls back to per-state replay
        only for foreign operations)."""
        try:
            indices = self.engine.history_indices(history)
        except ForeignOperationError:
            obs.count("quant.fallback_object")
            pushed = self._as_object(dist).push_forward(
                self._coerce_history(history)
            )
            return self._as_compiled(pushed)
        comp = self.engine.composed_history_array(indices)
        return self._as_compiled(dist).push_forward(comp)

    @staticmethod
    def _coerce_history(history: History | Operation) -> History:
        if isinstance(history, Operation):
            return History.of(history)
        return history

    def _meter(
        self, budget: ExecutionBudget | None, label: str
    ) -> BudgetMeter | None:
        budget = budget if budget is not None else self.budget
        if budget is None or not budget.bounded:
            return None
        return budget.start(label)

    # -- marginals / joints on value columns ----------------------------------

    def _joint_initial_final(
        self,
        cdist: CompiledDistribution,
        comp: Sequence[int],
        source_names: Sequence[str],
        target: str,
        meter: BudgetMeter | None,
    ) -> dict[tuple[object, object], Fraction]:
        """Joint table of the initial source tuple against the final
        target value — same keys and the same exact ``Fraction`` masses
        as the object path's ``_joint_initial_final``."""
        compiled = self.engine.compiled_system()
        cols = compiled.value_columns(source_names)
        tcol, tdom = compiled.value_column(target)
        scanned = 0
        next_check = 0
        if cdist.uniform:
            # Equal weights: tally integer counts and normalize once.
            # Fraction(c, n) is the same exact value as c summed copies
            # of Fraction(1, n), so the table is bit-identical to the
            # object path's — only built with |keys| constructions
            # instead of |support| additions.
            n = len(cdist)
            counts: dict[tuple[object, object], int] = {}
            for i in cdist.ids:
                if meter is not None and scanned >= next_check:
                    meter.check(scanned, scanned)
                    next_check = scanned + meter.interval
                scanned += 1
                key = (
                    tuple(dom[col[i]] for col, dom in cols),
                    tdom[tcol[comp[i]]],
                )
                counts[key] = counts.get(key, 0) + 1
            obs.count("quant.states_scanned", scanned)
            return {key: Fraction(c, n) for key, c in counts.items()}
        out: dict[tuple[object, object], Fraction] = {}
        for i, w in zip(cdist.ids, cdist.weights):
            if meter is not None and scanned >= next_check:
                meter.check(scanned, scanned)
                next_check = scanned + meter.interval
            scanned += 1
            key = (
                tuple(dom[col[i]] for col, dom in cols),
                tdom[tcol[comp[i]]],
            )
            prev = out.get(key)
            out[key] = w if prev is None else prev + w
        obs.count("quant.states_scanned", scanned)
        return out

    def _source_marginal(
        self, cdist: CompiledDistribution, source_names: Sequence[str]
    ) -> dict[object, Fraction]:
        compiled = self.engine.compiled_system()
        cols = compiled.value_columns(source_names)
        if cdist.uniform:
            n = len(cdist)
            counts: dict[object, int] = {}
            for i in cdist.ids:
                key = tuple(dom[col[i]] for col, dom in cols)
                counts[key] = counts.get(key, 0) + 1
            return {key: Fraction(c, n) for key, c in counts.items()}
        out: dict[object, Fraction] = {}
        for i, w in zip(cdist.ids, cdist.weights):
            key = tuple(dom[col[i]] for col, dom in cols)
            prev = out.get(key)
            out[key] = w if prev is None else prev + w
        return out

    # -- fixed-input measures (section 7.4) -----------------------------------

    def source_entropy(self, dist, sources: Iterable[str]) -> float:
        """Initial entropy of the source tuple, in bits."""
        source_names = sorted(frozenset(sources))
        return entropy(
            self._source_marginal(self._as_compiled(dist), source_names)
        )

    def bits_transmitted(
        self,
        dist,
        sources: Iterable[str],
        target: str,
        history: History | Operation,
        budget: ExecutionBudget | None = None,
    ) -> float:
        """The equivocation measure ``I(A_initial ; target_final)``."""
        source_names = sorted(frozenset(sources))
        try:
            indices = self.engine.history_indices(history)
        except ForeignOperationError:
            obs.count("quant.fallback_object")
            return _channel.bits_transmitted(
                self._as_object(dist),
                source_names,
                target,
                self._coerce_history(history),
            )
        cdist = self._as_compiled(dist)
        with obs.span(
            "quant.measure",
            kind="bits_transmitted",
            sources=",".join(source_names),
            target=target,
        ):
            meter = self._meter(
                budget, f"quantify bits A={source_names} |H|={len(indices)}"
            )
            if meter is not None:
                meter.check(0, 0)
            comp = self.engine.composed_history_array(indices)
            joint = self._joint_initial_final(
                cdist, comp, source_names, target, meter
            )
            return mutual_information(joint)

    def equivocation(
        self,
        dist,
        sources: Iterable[str],
        target: str,
        history: History | Operation,
        budget: ExecutionBudget | None = None,
    ) -> float:
        """``H(A_initial | target_final)`` — source entropy minus bits."""
        return self.source_entropy(dist, sources) - self.bits_transmitted(
            dist, sources, target, history, budget
        )

    def _slices(
        self, cdist: CompiledDistribution, source_names: Sequence[str]
    ) -> Iterator[tuple[Fraction, list[tuple[int, Fraction]]]]:
        """The conditional slices of the averaged measure as
        ``(mass, [(id, normalized weight), ...])`` groups.

        A slice — "everything outside A held at z" — is exactly one
        Def 1-1 bucket of the partition for source set A, so the uniform
        case reuses the engine's store-backed partition (the very
        buckets the history sweep builds).  Non-uniform supports group
        by the same source-zeroed rest id arithmetically.
        """
        if cdist.uniform:
            n = len(cdist)
            buckets = self.engine.def11_buckets(
                source_names, cdist.constraint
            )
            for bucket in buckets:
                share = Fraction(1, len(bucket))
                yield Fraction(len(bucket), n), [(i, share) for i in bucket]
            return
        kernel = self.engine.compiled_system().kernel
        src = [
            (kernel.strides[k], kernel.sizes[k])
            for k in self.engine.compiled_system().source_indices(source_names)
        ]
        groups: dict[int, list[tuple[int, Fraction]]] = {}
        for i, w in zip(cdist.ids, cdist.weights):
            rest = i
            for stride, size in src:
                rest -= ((i // stride) % size) * stride
            groups.setdefault(rest, []).append((i, w))
        for members in groups.values():
            mass = sum((w for _, w in members), Fraction(0))
            yield mass, [(i, w / mass) for i, w in members]

    def bits_transmitted_averaged(
        self,
        dist,
        sources: Iterable[str],
        target: str,
        history: History | Operation,
        budget: ExecutionBudget | None = None,
    ) -> float:
        """The averaged measure ``I(A_init ; target_final | rest_init)``
        in one bucket-grouped pass: each Def 1-1 bucket *is* one z-slice,
        contributing its bucket-mass-weighted per-slice MI."""
        source_names = sorted(frozenset(sources))
        try:
            indices = self.engine.history_indices(history)
        except ForeignOperationError:
            obs.count("quant.fallback_object")
            return _channel.bits_transmitted_averaged(
                self._as_object(dist),
                source_names,
                target,
                self._coerce_history(history),
            )
        cdist = self._as_compiled(dist)
        rest = frozenset(cdist.space_names) - frozenset(source_names)
        if not rest:
            return self.bits_transmitted(
                cdist, source_names, target, history, budget
            )
        compiled = self.engine.compiled_system()
        with obs.span(
            "quant.measure",
            kind="averaged",
            sources=",".join(source_names),
            target=target,
        ):
            meter = self._meter(
                budget,
                f"quantify averaged A={source_names} |H|={len(indices)}",
            )
            if meter is not None:
                meter.check(0, 0)
            comp = self.engine.composed_history_array(indices)
            cols = compiled.value_columns(source_names)
            tcol, tdom = compiled.value_column(target)
            total = 0.0
            scanned = 0
            n_slices = 0
            if cdist.uniform:
                # Every slice is uniform over its bucket, so the joint
                # is a pure count table — per-slice MI on integers.
                n = len(cdist)
                buckets = self.engine.def11_buckets(
                    source_names, cdist.constraint
                )
                for bucket in buckets:
                    if meter is not None:
                        meter.check(scanned, scanned)
                    counts: dict[tuple[object, object], int] = {}
                    for i in bucket:
                        key = (
                            tuple(dom[col[i]] for col, dom in cols),
                            tdom[tcol[comp[i]]],
                        )
                        counts[key] = counts.get(key, 0) + 1
                    size = len(bucket)
                    scanned += size
                    n_slices += 1
                    total += (size / n) * _counts_mutual_information(
                        counts, size
                    )
                obs.count("quant.states_scanned", scanned)
                obs.count("quant.buckets_scanned", n_slices)
                return max(total, 0.0)
            for mass, members in self._slices(cdist, source_names):
                if meter is not None:
                    meter.check(scanned, scanned)
                joint: dict[tuple[object, object], Fraction] = {}
                for i, share in members:
                    key = (
                        tuple(dom[col[i]] for col, dom in cols),
                        tdom[tcol[comp[i]]],
                    )
                    prev = joint.get(key)
                    joint[key] = share if prev is None else prev + share
                scanned += len(members)
                n_slices += 1
                total += float(mass) * mutual_information(joint)
            obs.count("quant.states_scanned", scanned)
            obs.count("quant.buckets_scanned", n_slices)
            return max(total, 0.0)

    def interference(
        self,
        dist,
        a1: Iterable[str],
        a2: Iterable[str],
        target: str,
        history: History | Operation,
        budget: ExecutionBudget | None = None,
    ) -> float:
        """``b(A1) + b(A2) - b(A1 u A2)`` under the equivocation measure
        (negative = contingent transmission, as in the mod-sum example)."""
        b1 = self.bits_transmitted(dist, a1, target, history, budget)
        b2 = self.bits_transmitted(dist, a2, target, history, budget)
        union = frozenset(a1) | frozenset(a2)
        b12 = self.bits_transmitted(dist, union, target, history, budget)
        return b1 + b2 - b12

    def capacity_table(
        self,
        dist,
        history: History | Operation,
        targets: Iterable[str] | None = None,
        budget: ExecutionBudget | None = None,
    ) -> dict[tuple[str, str], float]:
        """Equivocation-measure bits for every (singleton source, target)
        pair, sharing ONE composed table and one support sweep per
        source across all targets — the batched analogue of the nested
        object loop."""
        try:
            indices = self.engine.history_indices(history)
        except ForeignOperationError:
            obs.count("quant.fallback_object")
            return _channel.capacity_table(
                self._as_object(dist),
                self._coerce_history(history),
                targets,
            )
        cdist = self._as_compiled(dist)
        compiled = self.engine.compiled_system()
        names = compiled.kernel.names
        target_list = tuple(targets) if targets is not None else names
        with obs.span("quant.measure", kind="capacity_table"):
            meter = self._meter(
                budget, f"quantify table |H|={len(indices)}"
            )
            if meter is not None:
                meter.check(0, 0)
            comp = self.engine.composed_history_array(indices)
            tcols = [(t, compiled.value_column(t)) for t in target_list]
            out: dict[tuple[str, str], float] = {}
            scanned = 0
            next_check = 0
            n = len(cdist)
            for source in names:
                scol, sdom = compiled.value_column(source)
                if cdist.uniform:
                    # Tally counts, normalize once (same exact table).
                    tallies: dict[str, dict[tuple[object, object], int]] = {
                        t: {} for t in target_list
                    }
                    for i in cdist.ids:
                        if meter is not None and scanned >= next_check:
                            meter.check(scanned, scanned)
                            next_check = scanned + meter.interval
                        scanned += 1
                        sval = (sdom[scol[i]],)
                        fi = comp[i]
                        for t, (tcol, tdom) in tcols:
                            key = (sval, tdom[tcol[fi]])
                            jt = tallies[t]
                            jt[key] = jt.get(key, 0) + 1
                    for t in target_list:
                        out[(source, t)] = mutual_information(
                            {k: Fraction(c, n) for k, c in tallies[t].items()}
                        )
                    continue
                joints: dict[str, dict[tuple[object, object], Fraction]] = {
                    t: {} for t in target_list
                }
                for i, w in zip(cdist.ids, cdist.weights):
                    if meter is not None and scanned >= next_check:
                        meter.check(scanned, scanned)
                        next_check = scanned + meter.interval
                    scanned += 1
                    sval = (sdom[scol[i]],)
                    fi = comp[i]
                    for t, (tcol, tdom) in tcols:
                        key = (sval, tdom[tcol[fi]])
                        jt = joints[t]
                        prev = jt.get(key)
                        jt[key] = w if prev is None else prev + w
                for t in target_list:
                    out[(source, t)] = mutual_information(joints[t])
            obs.count("quant.states_scanned", scanned)
            return out

    # -- the channel layer (section 1.8) --------------------------------------

    def channel_matrix(
        self,
        rest_distribution,
        sources: Iterable[str],
        target: str,
        history: History | Operation,
        budget: ExecutionBudget | None = None,
    ) -> tuple[list[tuple[Value, ...]], list[Value], list[list[float]]]:
        """The induced discrete channel, from ONE composed-history sweep.

        Each channel input is an additive offset ``sum(code_k * stride_k)``
        on the source-zeroed rest part of a support id, so forcing the
        source cells is integer addition — no ``state.replace`` and no
        per-input replay.  Same ``(inputs, outputs, matrix)`` contract as
        the object path.
        """
        source_names = sorted(frozenset(sources))
        try:
            indices = self.engine.history_indices(history)
        except ForeignOperationError:
            obs.count("quant.fallback_object")
            return _bandwidth.channel_matrix(
                self._as_object(rest_distribution),
                source_names,
                target,
                self._coerce_history(history),
            )
        cdist = self._as_compiled(rest_distribution)
        compiled = self.engine.compiled_system()
        kernel = compiled.kernel
        space = compiled.system.space
        with obs.span(
            "quant.channel_matrix",
            sources=",".join(source_names),
            target=target,
        ):
            meter = self._meter(
                budget,
                f"quantify channel A={source_names} |H|={len(indices)}",
            )
            if meter is not None:
                meter.check(0, 0)
            comp = self.engine.composed_history_array(indices)
            tcol, tdom = compiled.value_column(target)
            position = {name: k for k, name in enumerate(kernel.names)}
            src = [
                (kernel.strides[position[name]], kernel.sizes[position[name]])
                for name in source_names
            ]
            # Marginalize onto the source-zeroed rest part first: every
            # support id with the same rest assignment lands on the same
            # part, so each input's sweep touches |rest support| ids, not
            # |support|.  Uniform supports keep integer multiplicities
            # (exact: Fraction(c, total) == c summed copies of 1/n after
            # normalization); weighted supports accumulate Fractions
            # once, shared across every input.
            rest_mass: dict[int, object] = {}
            if cdist.uniform:
                for i in cdist.ids:
                    rest = i
                    for stride, size in src:
                        rest -= ((i // stride) % size) * stride
                    rest_mass[rest] = rest_mass.get(rest, 0) + 1
            else:
                for i, w in zip(cdist.ids, cdist.weights):
                    rest = i
                    for stride, size in src:
                        rest -= ((i // stride) % size) * stride
                    prev = rest_mass.get(rest)
                    rest_mass[rest] = w if prev is None else prev + w
            rest_items = list(rest_mass.items())
            # Each source value is an additive stride offset (value
            # domain order, matching the object path's product order).
            per_source = [
                [
                    (value, idx * kernel.strides[position[name]])
                    for idx, value in enumerate(space.domain(name))
                ]
                for name in source_names
            ]
            inputs: list[tuple[Value, ...]] = []
            row_tables: list[dict[Value, Fraction]] = []
            outputs_seen: dict[Value, None] = {}
            scanned = 0
            for combo in itertools.product(*per_source):
                if meter is not None:
                    meter.check(scanned, scanned)
                offset = sum(off for _, off in combo)
                inputs.append(tuple(value for value, _ in combo))
                row: dict[Value, object] = {}
                for rp, mass in rest_items:
                    observation = tdom[tcol[comp[rp + offset]]]
                    prev = row.get(observation)
                    row[observation] = mass if prev is None else prev + mass
                scanned += len(rest_items)
                total = sum(row.values())
                if total == 0:
                    raise DistributionError("empty conditional distribution")
                row = {o: Fraction(p, total) for o, p in row.items()}
                row_tables.append(row)
                for o in row:
                    outputs_seen.setdefault(o)
            outputs = list(outputs_seen)
            matrix = [
                [float(row.get(o, Fraction(0))) for o in outputs]
                for row in row_tables
            ]
            obs.count("quant.states_scanned", scanned)
        return inputs, outputs, matrix

    def capacity(
        self,
        rest_distribution,
        sources: Iterable[str],
        target: str,
        history: History | Operation,
        tolerance: float = 1e-9,
        max_iterations: int = 10_000,
        budget: ExecutionBudget | None = None,
    ) -> float:
        """Shannon capacity of the induced channel via Blahut-Arimoto
        (vectorized when NumPy is available; see
        :func:`repro.quantitative.bandwidth.blahut_arimoto`)."""
        _inputs, _outputs, matrix = self.channel_matrix(
            rest_distribution, sources, target, history, budget
        )
        with obs.span("quant.capacity", target=target):
            return blahut_arimoto(matrix, tolerance, max_iterations)
