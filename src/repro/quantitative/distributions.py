"""Probability distributions over states (section 7.4).

The paper generalizes an initial constraint phi to a distribution ``pr``
over initial states, with ``[H]pr`` the push-forward distribution after a
history.  Probabilities are exact :class:`fractions.Fraction` values so
entropy computations have no spurious floating-point variety.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from fractions import Fraction

from repro.core.constraints import Constraint
from repro.core.errors import DistributionError
from repro.core.state import Space, State
from repro.core.system import History


class StateDistribution:
    """An exact probability distribution over the states of a space."""

    def __init__(
        self, space: Space, probabilities: Mapping[State, Fraction]
    ) -> None:
        self.space = space
        cleaned: dict[State, Fraction] = {}
        total = Fraction(0)
        for state, p in probabilities.items():
            p = Fraction(p)
            if p < 0:
                raise DistributionError(f"negative probability for {state!r}")
            if p == 0:
                continue
            if state not in space:
                raise DistributionError(f"{state!r} is not a state of the space")
            cleaned[state] = cleaned.get(state, Fraction(0)) + p
            total += p
        if total != 1:
            raise DistributionError(f"probabilities sum to {total}, not 1")
        self._probs = cleaned

    @classmethod
    def uniform(cls, constraint: Constraint) -> "StateDistribution":
        """Equal probability over the states satisfying a constraint — the
        paper's implicit assumption ("each state satisfying phi occurs
        with equal probability")."""
        constraint.require_satisfiable()
        states = sorted(constraint.satisfying, key=repr)
        p = Fraction(1, len(states))
        return cls(constraint.space, {s: p for s in states})

    @classmethod
    def uniform_over_space(cls, space: Space) -> "StateDistribution":
        return cls.uniform(Constraint.true(space))

    def probability(self, state: State) -> Fraction:
        return self._probs.get(state, Fraction(0))

    @property
    def support(self) -> frozenset[State]:
        return frozenset(self._probs)

    def items(self) -> Iterable[tuple[State, Fraction]]:
        return self._probs.items()

    def push_forward(self, history: History) -> "StateDistribution":
        """``[H]pr``: the distribution of ``H(sigma)`` when sigma ~ pr."""
        out: dict[State, Fraction] = {}
        for state, p in self._probs.items():
            successor = history(state)
            out[successor] = out.get(successor, Fraction(0)) + p
        return StateDistribution(self.space, out)

    def marginal(
        self, feature: Callable[[State], object]
    ) -> dict[object, Fraction]:
        """Distribution of an arbitrary feature of the state."""
        out: dict[object, Fraction] = {}
        for state, p in self._probs.items():
            key = feature(state)
            out[key] = out.get(key, Fraction(0)) + p
        return out

    def joint(
        self,
        feature_x: Callable[[State], object],
        feature_y: Callable[[State], object],
    ) -> dict[tuple[object, object], Fraction]:
        """Joint distribution of two features of the same state draw."""
        out: dict[tuple[object, object], Fraction] = {}
        for state, p in self._probs.items():
            key = (feature_x(state), feature_y(state))
            out[key] = out.get(key, Fraction(0)) + p
        return out

    def condition(
        self, predicate: Callable[[State], bool]
    ) -> "StateDistribution":
        """The conditional distribution given a predicate.

        One pass over the support: the predicate is evaluated exactly
        once per state (it may be expensive — a composed-history check,
        a z-slice tuple compare) and the surviving states are
        renormalized afterwards.
        """
        kept: dict[State, Fraction] = {
            s: p for s, p in self._probs.items() if predicate(s)
        }
        mass = sum(kept.values(), Fraction(0))
        if mass == 0:
            raise DistributionError("conditioning on a zero-probability event")
        return StateDistribution(
            self.space, {s: p / mass for s, p in kept.items()}
        )
