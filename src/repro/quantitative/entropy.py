"""Shannon entropy over exact discrete distributions.

Utility layer for the section 7.4 channel measures: entropy, joint and
conditional entropy, mutual information, and equivocation, all over
``Fraction``-valued probability tables (converted to floats only inside
``log2``).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from fractions import Fraction

from repro.core.errors import DistributionError


def _validate(table: Mapping[object, Fraction]) -> None:
    total = sum(table.values(), Fraction(0))
    if total != 1:
        raise DistributionError(f"probabilities sum to {total}, not 1")
    if any(p < 0 for p in table.values()):
        raise DistributionError("negative probability")


def entropy(table: Mapping[object, Fraction]) -> float:
    """``H(X) = -sum p log2 p`` in bits.

    >>> from fractions import Fraction as F
    >>> entropy({0: F(1, 2), 1: F(1, 2)})
    1.0
    """
    _validate(table)
    # Summation order is fixed by the key's repr so that object-path and
    # compiled-path tables (which enumerate support in different orders)
    # produce bit-identical floats for the same exact distribution.
    return -sum(
        float(p) * math.log2(float(p))
        for _, p in sorted(table.items(), key=lambda kv: repr(kv[0]))
        if p > 0
    )


def joint_entropy(joint: Mapping[tuple[object, object], Fraction]) -> float:
    """``H(X, Y)`` from a joint table keyed by (x, y)."""
    return entropy(joint)


def marginalize(
    joint: Mapping[tuple[object, object], Fraction], index: int
) -> dict[object, Fraction]:
    """Marginal of a joint table onto one coordinate (0 = X, 1 = Y)."""
    out: dict[object, Fraction] = {}
    for key, p in joint.items():
        out[key[index]] = out.get(key[index], Fraction(0)) + p
    return out


def conditional_entropy(
    joint: Mapping[tuple[object, object], Fraction]
) -> float:
    """``H(X | Y) = H(X, Y) - H(Y)`` — the paper's *equivocation* of the
    source with respect to the observation when X is the source and Y the
    observed object."""
    return joint_entropy(joint) - entropy(marginalize(joint, 1))


def mutual_information(
    joint: Mapping[tuple[object, object], Fraction]
) -> float:
    """``I(X; Y) = H(X) - H(X | Y)`` in bits; clamped at zero against
    floating-point dust."""
    value = entropy(marginalize(joint, 0)) - conditional_entropy(joint)
    # `max(-0.0, 0.0)` keeps the negative zero; compare explicitly.
    return value if value > 0.0 else 0.0
