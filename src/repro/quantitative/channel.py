"""Quantitative information transmission (section 7.4).

The paper sketches ``b(A -(pr :: H)-> beta)`` — the number of bits
transmitted from A to beta over H under initial distribution pr — and
discusses *two* defensible measures that differ on contingent
transmission (the ``beta <- (alpha1 + alpha2) mod 128`` example):

- the **equivocation measure**: ``I(A_initial ; beta_final)`` — what an
  observer of beta alone learns about A.  For the mod example with A =
  {alpha1}: 0 bits (any beta value leaves alpha1 uniform).
- the **averaged measure**: average the variety conveyed while everything
  *outside* A is held constant — ``I(A_initial ; beta_final | rest_initial)``.
  For the same example: 7 bits (fix alpha2 and all of alpha1's variety
  lands in beta).

Strong dependency is the *qualitative shadow of the averaged measure*:
``A |>_pr^H beta`` (with pr's support as phi) iff the averaged measure is
nonzero, which the tests verify.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from fractions import Fraction

from repro.core.state import State
from repro.core.system import History
from repro.quantitative.distributions import StateDistribution
from repro.quantitative.entropy import entropy, mutual_information


def _source_feature(sources: frozenset[str]):
    names = sorted(sources)
    return lambda s: tuple(s[n] for n in names)


def source_entropy(
    dist: StateDistribution, sources: Iterable[str]
) -> float:
    """Initial entropy of the source tuple, in bits."""
    feature = _source_feature(frozenset(sources))
    return entropy(dist.marginal(feature))


def _joint_initial_final(
    dist: StateDistribution,
    history: History,
    sources: frozenset[str],
    target: str,
):
    """Joint table of initial A values against the final target value,
    under one draw of the initial state."""
    src = _source_feature(sources)
    out: dict[tuple[object, object], Fraction] = {}
    for state, p in dist.items():
        key = (src(state), history(state)[target])
        out[key] = out.get(key, Fraction(0)) + p
    return out


def bits_transmitted(
    dist: StateDistribution,
    sources: Iterable[str],
    target: str,
    history: History,
) -> float:
    """The equivocation measure: ``I(A_initial ; target_final)`` in bits.

    "initial entropy minus equivocation" in the paper's phrasing.
    """
    joint = _joint_initial_final(
        dist, history, frozenset(sources), target
    )
    return mutual_information(joint)


def equivocation(
    dist: StateDistribution,
    sources: Iterable[str],
    target: str,
    history: History,
) -> float:
    """``H(A_initial | target_final)`` — the uncertainty an observer of the
    target retains about the source."""
    return source_entropy(dist, sources) - bits_transmitted(
        dist, sources, target, history
    )


def bits_transmitted_averaged(
    dist: StateDistribution,
    sources: Iterable[str],
    target: str,
    history: History,
) -> float:
    """The averaged measure: ``I(A_initial ; target_final | rest_initial)``
    — the average (over ways of holding every other object constant) of
    the variety A conveys to the target.

    This is conditional mutual information; conditioning variables are all
    initial objects outside A.
    """
    source_set = frozenset(sources)
    rest = frozenset(dist.space.names) - source_set
    if not rest:
        return bits_transmitted(dist, source_set, target, history)
    # I(X; Y | Z) computed as a Z-weighted average of per-slice MI.
    z_feature = _source_feature(rest)
    total = 0.0
    for z_value, z_prob in dist.marginal(z_feature).items():
        slice_dist = dist.condition(lambda s, z=z_value: z_feature(s) == z)
        joint = _joint_initial_final(slice_dist, history, source_set, target)
        total += float(z_prob) * mutual_information(joint)
    return max(total, 0.0)


def interference(
    dist: StateDistribution,
    a1: Iterable[str],
    a2: Iterable[str],
    target: str,
    history: History,
) -> float:
    """The paper's proposed *relative interference* between two sources:
    ``b(A1) + b(A2) - b(A1 u A2)`` under the equivocation measure.

    Negative values mean the union conveys **more** than the parts (the
    mod-sum example: 0 + 0 - 7 = -7, i.e. purely contingent transmission);
    positive values mean the sources crowd each other out.
    """
    b1 = bits_transmitted(dist, a1, target, history)
    b2 = bits_transmitted(dist, a2, target, history)
    union = frozenset(a1) | frozenset(a2)
    b12 = bits_transmitted(dist, union, target, history)
    return b1 + b2 - b12


def capacity_table(
    dist: StateDistribution,
    history: History,
    targets: Iterable[str] | None = None,
) -> dict[tuple[str, str], float]:
    """Equivocation-measure bits for every (singleton source, target) pair
    — the quantitative analogue of the Worth path set."""
    space = dist.space
    target_list = tuple(targets) if targets is not None else space.names
    out: dict[tuple[str, str], float] = {}
    for source in space.names:
        for target in target_list:
            out[(source, target)] = bits_transmitted(
                dist, {source}, target, history
            )
    return out
