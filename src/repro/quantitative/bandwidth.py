"""Channel capacity of an information path (section 1.8).

The introduction concedes that one may not be able to eliminate every
path in a system "designed to be kind to users" — e.g. the disk-timing
channel of Lampson 73 — and suggests being "satisfied to introduce
enough noise to guarantee that the bandwidth from the user to the disk
is sufficiently low".

This module quantifies that idea.  Fixing a distribution over every
object *except* the source set turns one use of a history into a classic
discrete memoryless channel::

    p(observation | source value) =
        Pr_rest[ H(sigma)[target] = observation | sigma.A = source value ]

whose Shannon **capacity** (the supremum of mutual information over
input distributions, bits per use) is computed with the Blahut-Arimoto
algorithm.  Capacity, unlike the fixed-input measures in
:mod:`repro.quantitative.channel`, is the right yardstick for an
*adversarial* source choosing its own coding.

:func:`capacity` runs Blahut-Arimoto; :func:`channel_matrix` exposes the
transition matrix; benchmark E27 demonstrates noise injection driving
the capacity of a leaky path toward zero.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence
from fractions import Fraction

from repro import obs
from repro.core.bitset import load_numpy
from repro.core.errors import DistributionError
from repro.core.state import Value
from repro.core.system import History
from repro.quantitative.distributions import StateDistribution


def channel_matrix(
    rest_distribution: StateDistribution,
    sources: Iterable[str],
    target: str,
    history: History,
) -> tuple[list[tuple[Value, ...]], list[Value], list[list[float]]]:
    """The discrete channel induced by a history.

    ``rest_distribution`` supplies the randomness of everything outside
    the source set (its marginal on the sources themselves is ignored —
    each channel input conditions the source cells to a fixed value).

    Returns ``(inputs, outputs, matrix)`` with
    ``matrix[i][j] = p(outputs[j] | inputs[i])``.
    """
    source_names = sorted(frozenset(sources))
    space = rest_distribution.space
    input_values = []
    for name in source_names:
        input_values.append(space.domain(name))
    inputs: list[tuple[Value, ...]] = list(itertools.product(*input_values))
    row_tables: list[dict[Value, Fraction]] = []
    outputs_seen: dict[Value, None] = {}
    for input_value in inputs:
        binding = dict(zip(source_names, input_value))
        row: dict[Value, Fraction] = {}
        for state, p in rest_distribution.items():
            forced = state.replace(**binding)
            observation = history(forced)[target]
            row[observation] = row.get(observation, Fraction(0)) + p
        total = sum(row.values(), Fraction(0))
        if total == 0:
            raise DistributionError("empty conditional distribution")
        row = {obs: p / total for obs, p in row.items()}
        row_tables.append(row)
        for obs in row:
            outputs_seen.setdefault(obs)
    outputs = list(outputs_seen)
    matrix = [
        [float(row.get(obs, Fraction(0))) for obs in outputs]
        for row in row_tables
    ]
    return inputs, outputs, matrix


def capacity(
    rest_distribution: StateDistribution,
    sources: Iterable[str],
    target: str,
    history: History,
    tolerance: float = 1e-9,
    max_iterations: int = 10_000,
) -> float:
    """Shannon capacity of the induced channel, in bits per use, via
    Blahut-Arimoto.

    >>> from repro.lang.builders import SystemBuilder
    >>> from repro.lang.expr import var
    >>> from repro.core.system import History
    >>> b = SystemBuilder().integers("a", "b", bits=1)
    >>> _ = b.op_assign("copy", "b", var("a"))
    >>> system = b.build()
    >>> dist = StateDistribution.uniform_over_space(system.space)
    >>> c = capacity(dist, {"a"}, "b", History.of(system.operation("copy")))
    >>> round(c, 6)
    1.0
    """
    _inputs, _outputs, matrix = channel_matrix(
        rest_distribution, sources, target, history
    )
    return blahut_arimoto(matrix, tolerance, max_iterations)


def blahut_arimoto(
    matrix: Sequence[Sequence[float]],
    tolerance: float = 1e-9,
    max_iterations: int = 10_000,
) -> float:
    """Capacity of a transition matrix ``matrix[i][j] = p(j | i)``.

    At least one mutual-information evaluation always runs and the
    *last computed* value is returned, so tiny ``max_iterations`` can
    only under-estimate capacity — never return a ``-1.0`` sentinel or
    other artifact.  Uses a NumPy bulk path when available (gated the
    same way as the bitset kernels: ``REPRO_BITSET_NUMPY=0`` forces the
    pure-Python fallback).
    """
    n_inputs = len(matrix)
    n_outputs = len(matrix[0]) if n_inputs else 0
    if n_inputs == 0 or n_outputs == 0:
        return 0.0
    iterations = max(1, max_iterations)
    np = load_numpy()
    if np is not None:
        return _blahut_arimoto_numpy(np, matrix, tolerance, iterations)
    return _blahut_arimoto_python(matrix, tolerance, iterations)


def _blahut_arimoto_python(
    matrix: Sequence[Sequence[float]], tolerance: float, max_iterations: int
) -> float:
    n_inputs = len(matrix)
    n_outputs = len(matrix[0])
    p_input = [1.0 / n_inputs] * n_inputs
    mutual = 0.0
    steps = 0
    for _ in range(max_iterations):
        steps += 1
        # q(j): output marginal under the current input distribution.
        q = [
            sum(p_input[i] * matrix[i][j] for i in range(n_inputs))
            for j in range(n_outputs)
        ]
        # Per-input divergence D(p(.|i) || q).
        divergence = []
        for i in range(n_inputs):
            row = matrix[i]
            d = 0.0
            for j in range(n_outputs):
                pij = row[j]
                if pij > 0:
                    d += pij * math.log2(pij / q[j])
            divergence.append(d)
        # Blahut-Arimoto bounds: max divergence upper-bounds capacity,
        # the current mutual information lower-bounds it.
        mutual = sum(p_input[i] * divergence[i] for i in range(n_inputs))
        upper = max(divergence)
        if upper - mutual < tolerance:
            break
        # Multiplicative update.
        weights = [p_input[i] * (2.0 ** divergence[i]) for i in range(n_inputs)]
        total = sum(weights)
        p_input = [w / total for w in weights]
    obs.count("quant.ba_iterations", steps)
    return max(mutual, 0.0)


def _blahut_arimoto_numpy(
    np, matrix: Sequence[Sequence[float]], tolerance: float, max_iterations: int
) -> float:
    P = np.asarray(matrix, dtype=np.float64)
    mask = P > 0.0
    logP = np.zeros_like(P)
    logP[mask] = np.log2(P[mask])
    n_inputs = P.shape[0]
    p_input = np.full(n_inputs, 1.0 / n_inputs)
    mutual = 0.0
    steps = 0
    for _ in range(max_iterations):
        steps += 1
        q = p_input @ P
        logq = np.zeros_like(q)
        positive = q > 0.0
        logq[positive] = np.log2(q[positive])
        divergence = (P * (logP - logq[np.newaxis, :])).sum(axis=1)
        mutual = float(p_input @ divergence)
        upper = float(divergence.max())
        if upper - mutual < tolerance:
            break
        weights = p_input * np.exp2(divergence)
        p_input = weights / weights.sum()
    obs.count("quant.ba_iterations", steps)
    return max(mutual, 0.0)
