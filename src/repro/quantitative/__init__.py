"""Quantitative information transmission (the section 7.4 extension)."""

from repro.quantitative.channel import (
    bits_transmitted,
    bits_transmitted_averaged,
    capacity_table,
    equivocation,
    interference,
    source_entropy,
)
from repro.quantitative.bandwidth import (
    blahut_arimoto,
    capacity,
    channel_matrix,
)
from repro.quantitative.compiled import CompiledDistribution, QuantEngine
from repro.quantitative.distributions import StateDistribution
from repro.quantitative.induction import (
    bits_transmitted_joint,
    joint_induction_holds,
    summed_induction_gap,
    summed_set_bits,
)
from repro.quantitative.entropy import (
    conditional_entropy,
    entropy,
    joint_entropy,
    marginalize,
    mutual_information,
)

__all__ = [
    "CompiledDistribution",
    "QuantEngine",
    "StateDistribution",
    "bits_transmitted",
    "blahut_arimoto",
    "capacity",
    "channel_matrix",
    "bits_transmitted_averaged",
    "bits_transmitted_joint",
    "capacity_table",
    "joint_induction_holds",
    "summed_induction_gap",
    "summed_set_bits",
    "conditional_entropy",
    "entropy",
    "equivocation",
    "interference",
    "joint_entropy",
    "marginalize",
    "mutual_information",
    "source_entropy",
]
