"""Quantitative Strong Dependency Induction (section 7.4's open question).

The paper asks whether a bits-transmitted measure can satisfy an
induction property: if ``b(A -(pr::H H')-> beta) = k`` then some set M
has ``b(A -(pr::H)-> M) >= k`` and ``b(M -([H]pr::H')-> beta) >= k``,
where the set-valued form is *defined as the sum* ::

    b(X -(pr::H)-> M) == sum over m in M of b(X -(pr::H)-> m)

This module answers the question both ways:

- :func:`summed_induction_gap` — the summed form **fails**: a mixing
  history (XOR-split) can encode A's variety jointly across objects so
  that every per-object mutual information is zero while the composite
  channel still delivers k bits.  The gap function returns, for the best
  possible M, how far short the summed first leg falls; the E25 bench
  exhibits a concrete counterexample system.
- :func:`joint_induction_holds` — replace the sum with the *joint*
  measure ``I(A ; M-after-H)`` and the property is a data-processing
  inequality: beta-after-H-H' is a function of the state after H, so
  ``M = all objects`` always witnesses it.  The checker verifies both
  legs with exact arithmetic.

Both use :func:`bits_transmitted_joint`, the joint-target generalization
of the equivocation measure.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable
from fractions import Fraction

from repro.core.system import History
from repro.quantitative.channel import bits_transmitted
from repro.quantitative.distributions import StateDistribution
from repro.quantitative.entropy import mutual_information


def bits_transmitted_joint(
    dist: StateDistribution,
    sources: Iterable[str],
    targets: Iterable[str],
    history: History,
) -> float:
    """``I(A_initial ; targets_after_H)`` — the joint (non-summed)
    set-target channel measure."""
    source_names = sorted(frozenset(sources))
    target_names = sorted(frozenset(targets))
    joint: dict[tuple[object, object], Fraction] = {}
    for state, p in dist.items():
        final = history(state)
        key = (
            tuple(state[n] for n in source_names),
            tuple(final[n] for n in target_names),
        )
        joint[key] = joint.get(key, Fraction(0)) + p
    return mutual_information(joint)


def summed_set_bits(
    dist: StateDistribution,
    sources: Iterable[str],
    targets: Iterable[str],
    history: History,
) -> float:
    """The paper's proposed set-target measure: the SUM of per-object
    bits (its own definition in the section 7.4 display)."""
    return sum(
        bits_transmitted(dist, sources, target, history)
        for target in frozenset(targets)
    )


def summed_induction_gap(
    dist: StateDistribution,
    sources: Iterable[str],
    target: str,
    prefix: History,
    suffix: History,
) -> tuple[float, float, frozenset[str]]:
    """Evaluate the summed-form induction property on a concrete split.

    Returns ``(k, best_first_leg, best_M)`` where ``k`` is the composite
    bits, ``best_first_leg`` maximizes the summed first leg over all
    candidate M that satisfy the *second* leg (>= k bits into the
    target under the pushed-forward distribution), and ``best_M`` attains
    it.  The property fails on this instance iff
    ``best_first_leg < k`` (up to float dust).

    Candidate M sets are all subsets of the space's objects — exponential,
    fine at example scale.
    """
    composite = prefix + suffix
    k = bits_transmitted(dist, sources, target, composite)
    pushed = dist.push_forward(prefix)
    names = dist.space.names
    best_first = float("-inf")
    best_m: frozenset[str] = frozenset()
    for size in range(1, len(names) + 1):
        for combo in itertools.combinations(names, size):
            m = frozenset(combo)
            second = summed_set_bits(pushed, m, [target], suffix)
            if second + 1e-9 < k:
                continue
            first = summed_set_bits(dist, sources, m, prefix)
            if first > best_first:
                best_first, best_m = first, m
    if best_first == float("-inf"):
        # No M satisfies even the second leg under the summed measure.
        best_first = 0.0
    return k, best_first, best_m


def joint_induction_holds(
    dist: StateDistribution,
    sources: Iterable[str],
    target: str,
    prefix: History,
    suffix: History,
    tolerance: float = 1e-9,
) -> tuple[bool, float, float, float]:
    """The repaired property: with the joint measure and
    ``M = all objects``, both legs dominate the composite (a
    data-processing inequality).  Returns
    ``(holds, k, first_leg, second_leg)``."""
    composite = prefix + suffix
    k = bits_transmitted(dist, sources, target, composite)
    all_objects = dist.space.names
    first = bits_transmitted_joint(dist, sources, all_objects, prefix)
    pushed = dist.push_forward(prefix)
    second = bits_transmitted_joint(pushed, all_objects, [target], suffix)
    holds = first + tolerance >= k and second + tolerance >= k
    return holds, k, first, second
