.PHONY: install test bench examples docs-check all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/program_certifier.py
	python examples/covert_channel_audit.py
	python examples/verified_writers.py
	python examples/confinement_service.py

docs-check:
	pytest --doctest-modules src/repro -q

all: test bench
