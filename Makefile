# Align with the tier-1 command in ROADMAP.md: run against src/ directly
# so a fresh clone works without a develop install.
PYTHONPATH_SRC = PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH}

.PHONY: install test chaos bench bench-quick docs-check examples all

install:
	python setup.py develop

test:
	$(PYTHONPATH_SRC) python -m pytest tests/

# Chaos suite: fault injection (worker kills, transient errors, delays)
# and budget-governed execution, checked bit-identical to the seed path.
chaos:
	$(PYTHONPATH_SRC) python -m pytest tests/chaos -q

bench:
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only

# Smoke-run the A3/A4/A5/A6/A7/A8 perf benches on tiny sizes: exercises the
# measured paths (seed / object engine / compiled kernel / bitset kernel /
# telemetry on+off / persistent store cold-vs-warm / compiled quantitative
# substrate vs object channel path) and their agreement asserts without
# recording numbers or enforcing most bars.  The A6 bench always uses
# fresh tmp store paths and asserts its cold legs saw zero hits, so a
# populated store lying around (e.g. REPRO_STORE pointing at one) can
# never accidentally warm a measurement.  This is what the CI bench-smoke
# job runs.
bench-quick:
	REPRO_BENCH_QUICK=1 $(PYTHONPATH_SRC) python -m pytest \
		benchmarks/test_a3_engine.py benchmarks/test_a3_compiled.py \
		benchmarks/test_a3_induction.py benchmarks/test_a3_budget.py \
		benchmarks/test_a4_telemetry.py benchmarks/test_a5_bitset.py \
		benchmarks/test_a6_persist.py benchmarks/test_a7_quantitative.py \
		benchmarks/test_a8_serve.py -q

examples:
	$(PYTHONPATH_SRC) python examples/quickstart.py
	$(PYTHONPATH_SRC) python examples/program_certifier.py
	$(PYTHONPATH_SRC) python examples/covert_channel_audit.py
	$(PYTHONPATH_SRC) python examples/verified_writers.py
	$(PYTHONPATH_SRC) python examples/confinement_service.py

docs-check:
	$(PYTHONPATH_SRC) python -m pytest --doctest-modules src/repro -q

all: test bench
