"""Setup shim: enables `python setup.py develop` / legacy editable installs
in offline environments that lack the `wheel` package (PEP 660 editable
builds need it; `develop` does not).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
